//! Output-pipeline cost guard: a multi-rank supervised run in three
//! output configurations, all checkpointing in memory every
//! `ckpt_every` steps (the recovery feature under test is the *file
//! output*, so the collective gather is in every baseline) —
//!
//! * `off`   — no shard directory: output off, the baseline step rate
//! * `sync`  — per-rank shards every checkpoint, written inline
//!   (`ckpt_async=0`): pack + encode + write all on the step path
//! * `async` — the same shards handed to the background writer thread
//!   (`ckpt_async=1`): only pack + encode + buffer handoff on the step
//!   path, the file write overlapped with the next steps' compute
//!
//! CI gates on `async / off`: the overlapped output pipeline must cost
//! < 5% of the step rate (tolerance overridable via `YY_CI_IO_TOL`).
//! The `sync` row is the motivation — it records what the overlap
//! hides. Write bandwidth and the payload compression ratio ride along.
//!
//! The JSON records `cores` (the host's available parallelism): on a
//! single-core host the writer thread has no spare core to overlap
//! onto, so `async` and `sync` both pay the full encode+write cost and
//! the `async/off` ratio measures total output CPU, not overlap. CI
//! gates `async` against `sync` instead in that case.
//!
//! With `BENCH_IO_JSON=<path>` set, writes a machine-readable summary.
//!
//! Knobs: `YY_BENCH_IO_GRID` (small|medium), `YY_BENCH_IO_STEPS`,
//! `YY_BENCH_IO_REPS`, `YY_BENCH_IO_EVERY`, `YY_BENCH_IO_CODEC`,
//! `YY_BENCH_IO_PTH`/`YY_BENCH_IO_PPH`.
//!
//! Run with: `cargo bench -p yy-bench --bench io`

use std::time::Duration;
use yycore::parallel::{run_parallel_supervised, RecoveryOpts};
use yycore::report::IoStats;
use yycore::{CkptCodec, RunConfig, SyncMode};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn decomp() -> (usize, usize) {
    (env_u64("YY_BENCH_IO_PTH", 1) as usize, env_u64("YY_BENCH_IO_PPH", 2) as usize)
}

fn cfg() -> RunConfig {
    let mut cfg = match std::env::var("YY_BENCH_IO_GRID").as_deref() {
        Ok("medium") => RunConfig::medium(),
        _ => RunConfig::small(),
    };
    cfg.init.perturb_amplitude = 1e-2;
    cfg
}

/// Seconds per step (and the io section) of one supervised run. Each
/// sharded run writes into a fresh scratch directory, removed after.
fn measure(
    cfg: &RunConfig,
    steps: u64,
    every: u64,
    shards: Option<(bool, CkptCodec)>,
) -> (f64, IoStats) {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let (pth, pph) = decomp();
    let dir = shards.map(|_| {
        std::env::temp_dir().join(format!(
            "yy_bench_io_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    });
    let opts = RecoveryOpts {
        deadline: Duration::from_secs(120),
        sync_mode: SyncMode::Overlapped,
        checkpoint_every: every,
        ckpt_dir: dir.clone(),
        ckpt_async: shards.map(|(a, _)| a).unwrap_or(true),
        ckpt_compress: shards.map(|(_, c)| c).unwrap_or_default(),
        ..RecoveryOpts::default()
    };
    let rep = run_parallel_supervised(cfg, pth, pph, steps, 0, &opts)
        .expect("io bench run completes");
    if let Some(dir) = dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    (rep.report.wall_seconds / steps as f64, rep.report.io)
}

fn mib_s(io: &IoStats) -> f64 {
    if io.write_wall_s <= 0.0 {
        return 0.0;
    }
    io.bytes_written as f64 / (1024.0 * 1024.0) / io.write_wall_s
}

fn main() {
    let cfg = cfg();
    let steps = env_u64("YY_BENCH_IO_STEPS", 12);
    let reps = env_u64("YY_BENCH_IO_REPS", 5) as usize;
    let every = env_u64("YY_BENCH_IO_EVERY", 2);
    let codec = CkptCodec::parse(
        &std::env::var("YY_BENCH_IO_CODEC").unwrap_or_else(|_| "delta".into()),
    )
    .expect("YY_BENCH_IO_CODEC");
    let (pth, pph) = decomp();

    // Interleave the modes rep by rep so host drift lands on all three
    // sides; gate on per-mode minima (the least noisy estimator).
    let (mut off, mut sync, mut asy) =
        (Vec::with_capacity(reps), Vec::with_capacity(reps), Vec::with_capacity(reps));
    let (mut sync_io, mut async_io) = (IoStats::default(), IoStats::default());
    for _ in 0..reps {
        off.push(measure(&cfg, steps, every, None).0);
        let (t, io) = measure(&cfg, steps, every, Some((false, codec)));
        sync.push(t);
        sync_io = io;
        let (t, io) = measure(&cfg, steps, every, Some((true, codec)));
        asy.push(t);
        async_io = io;
    }
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let (t_off, t_sync, t_async) = (min(&off), min(&sync), min(&asy));
    let (r_sync, r_async) = (t_sync / t_off, t_async / t_off);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("io_cost/off_{pth}x{pph}        {:>12.2} µs/step  ({cores} core(s))", t_off * 1e6);
    println!(
        "io_cost/sync_{pth}x{pph}       {:>12.2} µs/step  x{r_sync:.4} vs off  \
         {:.1} MiB/s  x{:.2} compression ({})",
        t_sync * 1e6,
        mib_s(&sync_io),
        sync_io.compression_ratio(),
        codec.name()
    );
    println!(
        "io_cost/async_{pth}x{pph}      {:>12.2} µs/step  x{r_async:.4} vs off  \
         {:.1} MiB/s  x{:.2} compression ({})",
        t_async * 1e6,
        mib_s(&async_io),
        async_io.compression_ratio(),
        codec.name()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"io\",\n",
            "  \"cores\": {},\n",
            "  \"steps\": {},\n",
            "  \"reps\": {},\n",
            "  \"decomp\": [{}, {}],\n",
            "  \"ckpt_every\": {},\n",
            "  \"codec\": \"{}\",\n",
            "  \"off\": {{ \"min_ns_per_step\": {:.0} }},\n",
            "  \"sync\": {{ \"min_ns_per_step\": {:.0}, \"ratio_vs_off\": {:.4}, ",
            "\"write_mib_s\": {:.1}, \"compression_ratio\": {:.4} }},\n",
            "  \"async\": {{ \"min_ns_per_step\": {:.0}, \"ratio_vs_off\": {:.4}, ",
            "\"write_mib_s\": {:.1}, \"compression_ratio\": {:.4} }}\n",
            "}}\n"
        ),
        cores,
        steps,
        reps,
        pth,
        pph,
        every,
        codec.name(),
        t_off * 1e9,
        t_sync * 1e9,
        r_sync,
        mib_s(&sync_io),
        sync_io.compression_ratio(),
        t_async * 1e9,
        r_async,
        mib_s(&async_io),
        async_io.compression_ratio(),
    );
    if let Ok(path) = std::env::var("BENCH_IO_JSON") {
        std::fs::write(&path, &json).expect("write BENCH_io.json");
        println!("wrote {path}");
    }
}
