//! The conversion argument (§IV): Yin-Yang vs the latitude–longitude
//! baseline at matched angular resolution.
//!
//! Reports the pole-penalty factors (time step, points per sphere) and
//! benchmarks one RK4 step on each grid — together these give the
//! wall-clock-per-simulated-time ratio that motivated the paper's grid
//! conversion.
//!
//! Run with: `cargo bench -p yy-bench --bench latlon_vs_yinyang`

use yy_bench::{Harness, Throughput};
use std::hint::black_box;
use yy_latlon::{LatLonGrid, LatLonSim};
use yy_mhd::{init::InitOptions, PhysParams};
use yycore::{RunConfig, SerialSim};

fn print_comparison() {
    println!("\n========== LAT-LON vs YIN-YANG (matched Δθ) ==========");
    println!("  Δθ(deg)   dt_yy       dt_ll       dt ratio   pts_yy   pts_ll");
    for nth_yy in [13_usize, 25, 49] {
        let dth = 90.0 / (nth_yy as f64 - 1.0);
        let nth_ll = (180.0 / dth).round() as usize;
        let nph_ll = 2 * nth_ll;

        let params = PhysParams::default_laptop();
        let opts = InitOptions { perturb_amplitude: 0.0, seed_amplitude: 0.0, seed: 1 };
        let mut cfg = RunConfig::small();
        cfg.nth_nominal = nth_yy;
        cfg.params = params;
        cfg.init = opts;
        let yy = SerialSim::new(cfg);
        let ll = LatLonSim::new(16, nth_ll, nph_ll, params, &opts);

        let dt_yy = yy.auto_dt();
        let dt_ll = ll.auto_dt();
        println!(
            "  {:6.2}   {:.3e}   {:.3e}   {:6.1}x   {:7}  {:7}",
            dth,
            dt_yy,
            dt_ll,
            dt_yy / dt_ll,
            yy.grid.total_points(),
            ll.grid.total_points()
        );
    }
    // The asymptotic penalty grows like 1/sin(Δθ/2) — the finer the mesh,
    // the worse the pole tax. Print the projected factor at the paper's
    // resolution.
    let g = LatLonGrid::new(16, 1024, 2048, 0.35);
    println!(
        "  at the paper's ~0.18 deg resolution the pole penalty reaches {:.0}x",
        g.yinyang_min_spacing_equivalent() / g.min_spacing()
    );
    println!("=======================================================\n");
}

fn bench_steps(c: &mut Harness) {
    print_comparison();

    let params = PhysParams::default_laptop();
    let opts = InitOptions { perturb_amplitude: 1e-2, seed_amplitude: 0.0, seed: 1 };

    // Matched Δθ = 7.5°.
    let mut cfg = RunConfig::small();
    cfg.nth_nominal = 13;
    cfg.params = params;
    cfg.init = opts;
    let mut yy = SerialSim::new(cfg);
    let dt_yy = yy.auto_dt() * 0.1;

    let mut ll = LatLonSim::new(16, 24, 48, params, &opts);
    let dt_ll = ll.auto_dt() * 0.1;

    let mut group = c.benchmark_group("rk4_step_matched_resolution");
    group.sample_size(10);
    group.throughput(Throughput::Elements(yy.grid.total_points() as u64));
    group.bench_function("yinyang", |b| b.iter(|| yy.advance(black_box(dt_yy))));
    group.throughput(Throughput::Elements(ll.grid.total_points() as u64));
    group.bench_function("latlon", |b| b.iter(|| ll.advance(black_box(dt_ll))));
    group.finish();
}

yy_bench::bench_main!(bench_steps);
