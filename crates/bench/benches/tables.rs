//! Regenerate Table I, Table II, Table III and List 1 of the paper.
//!
//! The harness measures the real solver's kernel intensity (flops per
//! interior grid point per step, from the instrumented run), feeds it to
//! the calibrated Earth Simulator model, prints all four artifacts, and
//! benchmarks the projection function itself so regressions in the model
//! code surface here.
//!
//! Run with: `cargo bench -p yy-bench --bench tables`

use yy_bench::Harness;
use std::hint::black_box;
use yy_esmodel::model::{project, RunShape};
use yy_esmodel::mpiproginf::{list1_text, ReportShape};
use yy_esmodel::{
    table1_text, table2_rows, table2_text, table3_text, EsMachine, EsModelParams, KernelProfile,
};
use yycore::{RunConfig, SerialSim};

/// Measure the solver's kernel intensity from a short instrumented run.
fn measured_profile() -> KernelProfile {
    let mut cfg = RunConfig::small();
    cfg.init.perturb_amplitude = 1e-2;
    let mut sim = SerialSim::new(cfg);
    let interior = sim.interior_points();
    let report = sim.run(3, 0);
    let measured = report.flops as f64 / report.steps as f64 / interior as f64;
    KernelProfile::yycore_default().with_measured_flops(measured)
}

fn bench_tables(c: &mut Harness) {
    let profile = measured_profile();
    println!("\n================ PAPER ARTIFACTS (regenerated) ================\n");
    println!("{}", table1_text());
    println!("{}", table2_text(&profile));
    println!("{}", table3_text(&profile));
    let projection = project(
        &EsMachine::earth_simulator(),
        &EsModelParams::calibrated(),
        &profile,
        &RunShape { procs: 4096, nr: 511, nth: 514, nph: 1538 },
    );
    println!("List 1 (projected MPIPROGINF of the flagship run):");
    println!("{}", list1_text(&ReportShape::paper_window(projection)));
    println!("===============================================================\n");

    // Verify paper-vs-model agreement inside the bench too, so a model
    // regression fails loudly here.
    for row in table2_rows(&profile) {
        let rel = (row.projection.tflops() - row.paper_tflops).abs() / row.paper_tflops;
        assert!(
            rel < 0.15,
            "Table II row ({} procs, nr {}) drifted: model {:.2} vs paper {:.2}",
            row.procs,
            row.nr,
            row.projection.tflops(),
            row.paper_tflops
        );
    }

    let machine = EsMachine::earth_simulator();
    let params = EsModelParams::calibrated();
    c.bench_function("table2_projection_six_rows", |b| {
        b.iter(|| {
            for &(procs, nr, _, _) in &yy_esmodel::TABLE2_PAPER {
                black_box(project(
                    &machine,
                    &params,
                    &profile,
                    &RunShape { procs, nr, nth: 514, nph: 1538 },
                ));
            }
        })
    });
    c.bench_function("list1_generation", |b| {
        b.iter(|| black_box(list1_text(&ReportShape::paper_window(projection))))
    });
}

yy_bench::bench_main!(bench_tables);
