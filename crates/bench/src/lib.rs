//! Benchmark harness crate. The interesting code lives in `benches/`.
