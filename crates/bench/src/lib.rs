//! Minimal in-repo benchmark harness (hermetic replacement for
//! `criterion`), plus the paper-table benches that use it (in
//! `benches/`).
//!
//! Design goals, in order: compile offline with zero dependencies, report
//! stable wall-clock numbers, stay out of the way. Measurement model:
//!
//! 1. calibrate — run the routine once to estimate its cost, then pick an
//!    iteration count so one *sample* lasts about `YY_BENCH_SAMPLE_MS`
//!    (default 50 ms, floored at one iteration);
//! 2. sample — take `YY_BENCH_SAMPLES` (default 10) such samples after a
//!    one-sample warmup;
//! 3. report — median / min / max time per iteration, plus derived
//!    throughput when the bench declares one.
//!
//! The median over samples (not the mean) is reported as the headline
//! number so one preempted sample cannot skew a comparison. A substring
//! filter can be passed on the command line, exactly like the stock
//! libtest harness: `cargo bench -p yy-bench --bench kernels -- rhs`.

use std::time::{Duration, Instant};

/// How a bench converts time-per-iteration into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]. With in-repo timing both
/// variants time each routine call individually; the variant only
/// bounds how many setup values calibration may materialize at once.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap inputs: calibration may run the setup many times.
    SmallInput,
    /// Expensive inputs: calibration is capped at few setup runs.
    LargeInput,
}

/// Per-iteration timing statistics over the collected samples.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's time per iteration.
    pub min: Duration,
    /// Slowest sample's time per iteration.
    pub max: Duration,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
}

/// Measurement driver handed to each bench closure.
pub struct Bencher {
    sample_budget: Duration,
    samples: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibration run (also serves as warmup of caches/branches).
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        // One untimed warmup sample, then the measured ones.
        for sample in 0..=self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            if sample > 0 {
                per_iter.push(start.elapsed() / iters as u32);
            }
        }
        self.finish_with(per_iter, iters);
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let cap = match size {
            BatchSize::SmallInput => 1 << 16,
            BatchSize::LargeInput => 64,
        };
        let iters = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, cap) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for sample in 0..=self.samples {
            let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs.drain(..) {
                std::hint::black_box(routine(input));
            }
            if sample > 0 {
                per_iter.push(start.elapsed() / iters as u32);
            }
        }
        self.finish_with(per_iter, iters);
    }

    fn finish_with(&mut self, mut per_iter: Vec<Duration>, iters: u64) {
        per_iter.sort_unstable();
        let stats = Stats {
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            max: per_iter[per_iter.len() - 1],
            iters_per_sample: iters,
        };
        self.stats = Some(stats);
    }
}

/// Top-level harness: owns the CLI filter and prints results.
pub struct Harness {
    filter: Option<String>,
    sample_ms: u64,
    samples: usize,
    ran: usize,
    skipped: usize,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Harness {
    /// Build a harness from the process arguments: flags are ignored
    /// (cargo passes `--bench`), the first free argument is a substring
    /// filter on bench names.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            sample_ms: env_u64("YY_BENCH_SAMPLE_MS", 50),
            samples: env_u64("YY_BENCH_SAMPLES", 10).max(1) as usize,
            ran: 0,
            skipped: 0,
        }
    }

    /// Run one named bench.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(name, None, f);
        self
    }

    /// Open a named group; benches inside share the group prefix and its
    /// current throughput declaration.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, prefix: name.to_string(), throughput: None }
    }

    /// Print the run footer. Called by [`bench_main!`].
    pub fn summary(&self) {
        println!(
            "\n{} benches run, {} filtered out ({} samples each, ~{} ms/sample)",
            self.ran, self.skipped, self.samples, self.sample_ms
        );
    }

    fn run(&mut self, name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                self.skipped += 1;
                return;
            }
        }
        let mut b = Bencher {
            sample_budget: Duration::from_millis(self.sample_ms),
            samples: self.samples,
            stats: None,
        };
        f(&mut b);
        self.ran += 1;
        match b.stats {
            Some(stats) => report(name, throughput, stats),
            // The closure never called iter(); still record the name.
            None => println!("{name:<44} (no measurement)"),
        }
    }
}

/// A named bench group (API mirror of criterion's `BenchmarkGroup`).
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Declare the work performed by one iteration of the *next*
    /// benches; used to derive rates in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for call-site compatibility; sampling is controlled by
    /// `YY_BENCH_SAMPLES` / `YY_BENCH_SAMPLE_MS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one named bench inside the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        let throughput = self.throughput;
        self.harness.run(&full, throughput, f);
        self
    }

    /// End the group (no-op; exists to keep call sites tidy).
    pub fn finish(self) {}
}

fn report(name: &str, throughput: Option<Throughput>, s: Stats) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format_rate(n as f64 / s.median.as_secs_f64(), "elem/s"),
        Throughput::Bytes(n) => format_rate(n as f64 / s.median.as_secs_f64(), "B/s"),
    });
    println!(
        "{name:<44} {:>12}/iter  [{} … {}]  x{}{}",
        format_duration(s.median),
        format_duration(s.min),
        format_duration(s.max),
        s.iters_per_sample,
        rate.map(|r| format!("  {r}")).unwrap_or_default()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Generate `fn main()` for a bench target: build a [`Harness`] from the
/// CLI, run each listed bench function, print the summary.
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::Harness::from_args();
            $( $func(&mut harness); )+
            harness.summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_is_scaled() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_rate(2.5e6, "elem/s"), "2.50 Melem/s");
    }

    #[test]
    fn bencher_collects_stats() {
        let mut b = Bencher {
            sample_budget: Duration::from_micros(200),
            samples: 3,
            stats: None,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            std::hint::black_box(count)
        });
        let s = b.stats.expect("stats recorded");
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.iters_per_sample >= 1);
        assert!(count >= s.iters_per_sample);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            sample_budget: Duration::from_micros(100),
            samples: 2,
            stats: None,
        };
        b.iter_batched(|| vec![1.0_f64; 16], |v| v.iter().sum::<f64>(), BatchSize::SmallInput);
        assert!(b.stats.is_some());
    }
}
