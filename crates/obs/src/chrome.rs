//! Chrome trace-event JSON export of flight-recorder contents.
//!
//! The output is the classic `{"traceEvents":[...]}` format understood
//! by Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: one
//! thread track per rank (`pid` 0, `tid` = world rank), solver phases as
//! complete-span `"X"` events, messages as instant `"i"` events plus
//! `"s"`/`"f"` flow arrows from the send site to the matching receive,
//! and faults/kills/health/checkpoint/rollback as instants. Timestamps
//! are microseconds (the format's unit) on the recorder set's shared
//! timeline.
//!
//! [`validate_chrome_trace`] is the export's own adversary: it re-parses
//! the JSON with [`crate::json`], checks the required keys on every
//! event, and asserts per-track timestamp monotonicity — CI runs it on
//! every post-mortem trace a faulted run produces.

use crate::event::{alert, class, counter, fault, health, phase, Event, TimedEvent};
use crate::json::num;

/// One rank's decoded flight-recorder contents, ready for export.
pub struct RankTrace {
    /// World rank (becomes the `tid` of the track).
    pub rank: usize,
    /// The rank's events, as returned by
    /// [`crate::FlightRecorder::snapshot`].
    pub events: Vec<TimedEvent>,
}

fn us(ts_ns: u64) -> String {
    num(ts_ns as f64 / 1000.0)
}

/// The flow-arrow id pairing a send with its receive: a pure mix of the
/// directed edge and the stream position, so both sides compute the same
/// id independently.
pub fn flow_id(src: u64, dst: u64, tag16: u64, seq: u64) -> u64 {
    let mut z = src
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(dst.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(tag16.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(seq)
        .wrapping_add(1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn push_event(out: &mut Vec<String>, rank: usize, te: &TimedEvent) {
    let tid = rank;
    match te.event {
        Event::Phase { phase: p, dur_ns } => {
            // The ring stamps a phase span at its *end*; Chrome wants
            // the start.
            let start = te.ts_ns.saturating_sub(dur_ns);
            out.push(format!(
                r#"{{"name":"{}","ph":"X","pid":0,"tid":{tid},"ts":{},"dur":{},"cat":"phase"}}"#,
                phase::name(p),
                us(start),
                us(dur_ns),
            ));
        }
        Event::Send { peer, class: c, bytes, tag16, seq } => {
            let id = flow_id(rank as u64, peer as u64, tag16 as u64, seq);
            let ts = us(te.ts_ns);
            let name = class::name(c);
            out.push(format!(
                r#"{{"name":"send {name}","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{ts},"cat":"msg","args":{{"to":{peer},"bytes":{bytes},"tag":{tag16},"seq":{seq}}}}}"#,
            ));
            out.push(format!(
                r#"{{"name":"{name}","ph":"s","id":"0x{id:x}","pid":0,"tid":{tid},"ts":{ts},"cat":"msg"}}"#,
            ));
        }
        Event::Recv { peer, class: c, bytes, tag16, seq } => {
            let id = flow_id(peer as u64, rank as u64, tag16 as u64, seq);
            let ts = us(te.ts_ns);
            let name = class::name(c);
            out.push(format!(
                r#"{{"name":"recv {name}","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{ts},"cat":"msg","args":{{"from":{peer},"bytes":{bytes},"tag":{tag16},"seq":{seq}}}}}"#,
            ));
            out.push(format!(
                r#"{{"name":"{name}","ph":"f","bp":"e","id":"0x{id:x}","pid":0,"tid":{tid},"ts":{ts},"cat":"msg"}}"#,
            ));
        }
        Event::FaultInjected { kind, peer, param } => out.push(format!(
            r#"{{"name":"fault {}","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{},"cat":"fault","args":{{"to":{peer},"param":{param}}}}}"#,
            fault::name(kind),
            us(te.ts_ns),
        )),
        Event::KillInjected { step } => out.push(format!(
            r#"{{"name":"kill injected","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"fault","args":{{"step":{step}}}}}"#,
            us(te.ts_ns),
        )),
        Event::HealthViolation { code, step } => out.push(format!(
            r#"{{"name":"health {}","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"health","args":{{"step":{step}}}}}"#,
            health::name(code),
            us(te.ts_ns),
        )),
        Event::CheckpointSaved { step } => out.push(format!(
            r#"{{"name":"checkpoint","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{},"cat":"ckpt","args":{{"step":{step}}}}}"#,
            us(te.ts_ns),
        )),
        Event::Rollback { pass, resume_step } => out.push(format!(
            r#"{{"name":"rollback","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"ckpt","args":{{"pass":{pass},"resume_step":{resume_step}}}}}"#,
            us(te.ts_ns),
        )),
        Event::Retile { pth, pph, pass, resume_step } => out.push(format!(
            r#"{{"name":"retile","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"elastic","args":{{"pth":{pth},"pph":{pph},"pass":{pass},"resume_step":{resume_step}}}}}"#,
            us(te.ts_ns),
        )),
        Event::Degraded { pass, checkpoint_every } => out.push(format!(
            r#"{{"name":"degraded","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"elastic","args":{{"pass":{pass},"checkpoint_every":{checkpoint_every}}}}}"#,
            us(te.ts_ns),
        )),
        Event::StepBegin { step } => out.push(format!(
            r#"{{"name":"step {step}","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{},"cat":"step","args":{{"step":{step}}}}}"#,
            us(te.ts_ns),
        )),
        Event::CriticalGate { phase: p, share_permille, steps } => out.push(format!(
            r#"{{"name":"critical path","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"analysis","args":{{"phase":"{}","share_permille":{share_permille},"steps":{steps}}}}}"#,
            us(te.ts_ns),
            phase::name(p),
        )),
        Event::StragglerFlagged { rank: r, reason, severity_permille } => out.push(format!(
            r#"{{"name":"straggler","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"analysis","args":{{"rank":{r},"reason":{reason},"severity_permille":{severity_permille}}}}}"#,
            us(te.ts_ns),
        )),
        Event::Alert { rule, kind, firing, step } => out.push(format!(
            r#"{{"name":"alert {}","ph":"i","s":"g","pid":0,"tid":{tid},"ts":{},"cat":"alert","args":{{"rule":{rule},"kind":"{}","step":{step}}}}}"#,
            if firing { "fire" } else { "clear" },
            us(te.ts_ns),
            alert::name(kind),
        )),
        // Perfetto keys counter tracks by (pid, name), not tid, so the
        // rank goes into the name to keep one track per counter per
        // rank.
        Event::CounterSample { id, value_bits } => out.push(format!(
            r#"{{"name":"{} r{tid}","ph":"C","pid":0,"tid":{tid},"ts":{},"cat":"counter","args":{{"value":{}}}}}"#,
            counter::name(id),
            us(te.ts_ns),
            num(f64::from_bits(value_bits)),
        )),
    }
}

/// Render rank tracks as a Chrome trace-event JSON document.
///
/// Events inside each track are sorted by timestamp (span events by
/// their *start*), which both Perfetto and the
/// [`validate_chrome_trace`] monotonicity check expect.
pub fn chrome_trace_json(tracks: &[RankTrace]) -> String {
    let mut out: Vec<String> = Vec::new();
    out.push(
        r#"{"name":"process_name","ph":"M","pid":0,"args":{"name":"geodynamo"}}"#.to_string(),
    );
    for t in tracks {
        out.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"rank {}"}}}}"#,
            t.rank, t.rank
        ));
    }
    for t in tracks {
        let mut evs: Vec<&TimedEvent> = t.events.iter().collect();
        // Sort by effective start time: a span's Chrome timestamp is its
        // start, which precedes its (ring-stamped) end.
        evs.sort_by_key(|te| match te.event {
            Event::Phase { dur_ns, .. } => te.ts_ns.saturating_sub(dur_ns),
            _ => te.ts_ns,
        });
        for te in evs {
            push_event(&mut out, t.rank, te);
        }
    }
    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"yy-obs\"}}\n");
    doc
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total trace events (metadata included).
    pub events: usize,
    /// `"X"` complete-span events.
    pub spans: usize,
    /// Flow arrows (`"s"` starts; each should have a matching `"f"`).
    pub flow_starts: usize,
    /// Flow finishes.
    pub flow_finishes: usize,
    /// `"kill injected"` instants.
    pub kills: usize,
    /// `"retile"` instants (elastic layout changes).
    pub retiles: usize,
    /// `"degraded"` instants (degraded-mode entries).
    pub degrades: usize,
    /// `"critical path"` / `"straggler"` diagnosis instants stamped by
    /// the post-run analyzer.
    pub analysis_marks: usize,
    /// `"alert fire"` / `"alert clear"` watchdog instants.
    pub alerts: usize,
    /// Distinct `tid` tracks seen (metadata excluded).
    pub tracks: usize,
    /// `"C"` counter samples.
    pub counter_samples: usize,
    /// Distinct counter tracks (by name; the rank is baked into counter
    /// names, so this is per counter per rank).
    pub counter_tracks: usize,
}

/// Parse and structurally validate a Chrome trace produced by
/// [`chrome_trace_json`] (or anything shaped like it): the document must
/// parse, carry a `traceEvents` array, every event must have the
/// required keys for its phase type, and within each `tid` track the
/// non-metadata timestamps must be monotone non-decreasing.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = crate::json::Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut check = TraceCheck { events: events.len(), ..TraceCheck::default() };
    let mut last_ts: Vec<(f64, f64)> = Vec::new(); // (tid, last ts)
    let mut counter_names: Vec<String> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = e
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?;
        e.get("pid").and_then(|v| v.as_f64()).ok_or_else(|| format!("event {i}: missing pid"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let tid = e
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(format!(
                        "event {i} ({name}): ts {ts} goes backwards on track {tid} (last {last})"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push((tid, ts)),
        }
        match ph {
            "X" => {
                check.spans += 1;
                e.get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i} ({name}): X without dur"))?;
            }
            "s" | "f" => {
                e.get("id").ok_or_else(|| format!("event {i} ({name}): flow without id"))?;
                if ph == "s" {
                    check.flow_starts += 1;
                } else {
                    check.flow_finishes += 1;
                }
            }
            "i" => {
                if name == "kill injected" {
                    check.kills += 1;
                } else if name == "retile" {
                    check.retiles += 1;
                } else if name == "degraded" {
                    check.degrades += 1;
                } else if name == "critical path" || name == "straggler" {
                    check.analysis_marks += 1;
                } else if name == "alert fire" || name == "alert clear" {
                    check.alerts += 1;
                }
            }
            "C" => {
                check.counter_samples += 1;
                let value = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i} ({name}): C without args.value"))?;
                if !value.is_finite() {
                    return Err(format!(
                        "event {i} ({name}): non-finite counter value {value}"
                    ));
                }
                if !counter_names.iter().any(|n| n == name) {
                    counter_names.push(name.to_string());
                }
            }
            other => return Err(format!("event {i} ({name}): unexpected ph {other:?}")),
        }
    }
    check.tracks = last_ts.len();
    check.counter_tracks = counter_names.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tracks() -> Vec<RankTrace> {
        let t0 = vec![
            TimedEvent { ts_ns: 1_000, event: Event::StepBegin { step: 0 } },
            TimedEvent {
                ts_ns: 3_000,
                event: Event::Send { peer: 1, class: class::HALO, bytes: 800, tag16: 11, seq: 0 },
            },
            TimedEvent { ts_ns: 9_000, event: Event::Phase { phase: phase::INTERIOR, dur_ns: 5_000 } },
            TimedEvent { ts_ns: 9_200, event: Event::counter_sample(0, 512.25) },
            TimedEvent {
                ts_ns: 9_200,
                event: Event::counter_sample(counter::QUEUE_DEPTH, 2.0),
            },
            TimedEvent { ts_ns: 9_500, event: Event::KillInjected { step: 4 } },
        ];
        let t1 = vec![
            TimedEvent { ts_ns: 2_000, event: Event::StepBegin { step: 0 } },
            TimedEvent {
                ts_ns: 6_000,
                event: Event::Recv { peer: 0, class: class::UNKNOWN, bytes: 800, tag16: 11, seq: 0 },
            },
            TimedEvent { ts_ns: 8_000, event: Event::CheckpointSaved { step: 2 } },
            TimedEvent { ts_ns: 8_500, event: Event::HealthViolation { code: 1, step: 3 } },
            TimedEvent { ts_ns: 8_600, event: Event::Rollback { pass: 1, resume_step: 2 } },
            TimedEvent { ts_ns: 8_700, event: Event::FaultInjected { kind: 0, peer: 0, param: 2 } },
            TimedEvent {
                ts_ns: 8_800,
                event: Event::Retile { pth: 1, pph: 2, pass: 2, resume_step: 4 },
            },
            TimedEvent { ts_ns: 8_900, event: Event::Degraded { pass: 2, checkpoint_every: 4 } },
            TimedEvent {
                ts_ns: 9_000,
                event: Event::CriticalGate { phase: phase::WAIT, share_permille: 583, steps: 7 },
            },
            TimedEvent {
                ts_ns: 9_100,
                event: Event::StragglerFlagged { rank: 1, reason: 1, severity_permille: 14_200 },
            },
            TimedEvent {
                ts_ns: 9_200,
                event: Event::Alert { rule: 0, kind: alert::DT_COLLAPSE, firing: true, step: 6 },
            },
            TimedEvent {
                ts_ns: 9_300,
                event: Event::Alert { rule: 0, kind: alert::DT_COLLAPSE, firing: false, step: 8 },
            },
        ];
        vec![RankTrace { rank: 0, events: t0 }, RankTrace { rank: 1, events: t1 }]
    }

    #[test]
    fn export_validates_cleanly() {
        let doc = chrome_trace_json(&demo_tracks());
        let check = validate_chrome_trace(&doc).expect("trace must validate");
        assert_eq!(check.spans, 1);
        assert_eq!(check.kills, 1);
        assert_eq!(check.retiles, 1);
        assert_eq!(check.degrades, 1);
        assert_eq!(check.analysis_marks, 2, "critical path + straggler instants");
        assert_eq!(check.alerts, 2, "alert fire + clear instants");
        assert_eq!(check.flow_starts, 1);
        assert_eq!(check.flow_finishes, 1);
        assert_eq!(check.tracks, 2);
        assert_eq!(check.counter_samples, 2);
        assert_eq!(check.counter_tracks, 2, "mflops:rhs r0 and queue_depth r0");
    }

    #[test]
    fn counter_samples_become_per_rank_counter_tracks() {
        let doc = chrome_trace_json(&demo_tracks());
        assert!(doc.contains(r#""name":"mflops:rhs r0","ph":"C""#), "{doc}");
        assert!(doc.contains(r#""args":{"value":512.25}"#));
        let parsed = crate::json::Json::parse(&doc).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let c: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert_eq!(c.len(), 2);
        for e in c {
            assert!(e.get("args").unwrap().get("value").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn validator_rejects_bad_counter_records() {
        let no_value = r#"{"traceEvents":[
            {"name":"c","ph":"C","pid":0,"tid":0,"ts":1.0,"args":{}}
        ]}"#;
        let err = validate_chrome_trace(no_value).unwrap_err();
        assert!(err.contains("without args.value"), "{err}");
        let non_finite = r#"{"traceEvents":[
            {"name":"c","ph":"C","pid":0,"tid":0,"ts":1.0,"args":{"value":1e999}}
        ]}"#;
        let err = validate_chrome_trace(non_finite).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn send_and_recv_agree_on_the_flow_id() {
        let doc = chrome_trace_json(&demo_tracks());
        let parsed = crate::json::Json::parse(&doc).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let ids: Vec<&str> = evs
            .iter()
            .filter(|e| {
                matches!(e.get("ph").and_then(|p| p.as_str()), Some("s") | Some("f"))
            })
            .map(|e| e.get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], ids[1], "send and recv must pair into one arrow");
    }

    #[test]
    fn spans_are_emitted_at_their_start() {
        // A span recorded at t=9µs with 5µs duration starts at 4µs —
        // before the kill at 9.5µs but after the send at 3µs.
        let doc = chrome_trace_json(&demo_tracks());
        let parsed = crate::json::Json::parse(&doc).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let span = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("span present");
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(4.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(5.0));
        assert_eq!(span.get("name").unwrap().as_str(), Some("interior"));
    }

    #[test]
    fn validator_rejects_backwards_time_and_missing_keys() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","pid":0,"tid":0,"ts":5.0},
            {"name":"b","ph":"i","s":"t","pid":0,"tid":0,"ts":4.0}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        let missing = r#"{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":1.0}]}"#;
        let err = validate_chrome_trace(missing).unwrap_err();
        assert!(err.contains("without dur"), "{err}");
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn flow_id_is_direction_and_stream_sensitive() {
        assert_ne!(flow_id(0, 1, 11, 0), flow_id(1, 0, 11, 0));
        assert_ne!(flow_id(0, 1, 11, 0), flow_id(0, 1, 11, 1));
        assert_ne!(flow_id(0, 1, 11, 0), flow_id(0, 1, 12, 0));
        assert_eq!(flow_id(0, 1, 11, 0), flow_id(0, 1, 11, 0));
    }
}
