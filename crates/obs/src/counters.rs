//! Per-kernel performance counters — the software stand-in for the Earth
//! Simulator's hardware counter report (`MPIPROGINF`, List 1 of the
//! paper).
//!
//! The paper's 15.2 TFlops headline is not a trace: it is read off a
//! *counter report* — per-process FLOP count, vector element count and
//! average vector length, aggregated at `MPI_Finalize`. This module
//! reproduces that discipline in software. Every numerical site (RHS
//! sweep, RK4 combine, halo pack/unpack, overset donate/fill, health
//! scan) tallies **exact, analytically derived** counts into a
//! [`CounterSet`]: FLOPs from the per-point constants the kernels are
//! written against, grid points touched, innermost-loop executions
//! (`loops`, so `points / loops` is the equivalent vector length the ES
//! counters would report), and modeled bytes moved. Wall time per kernel
//! is sampled with a monotonic clock only while the set is enabled.
//!
//! Like the flight-recorder ring, a disabled `CounterSet` costs **one
//! relaxed atomic load** per site and nothing else — no clock reads, no
//! tallying — and the CI overhead gate (`bench/benches/obs.rs`) holds the
//! enabled path under the same tolerance as the recorder.
//!
//! Snapshots reduce across ranks exactly: every tally is an integer far
//! below 2⁵³, so an elementwise-Sum allreduce over the
//! [`CounterSnapshot::to_f64s`] words is lossless (the same trick the
//! histogram merge uses).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Kernel identifiers: the per-kernel counter namespace.
///
/// Stable u8 ids, used both as `CounterSet` indices and as the `sub`
/// byte of [`crate::Event::CounterSample`] wire records.
pub mod kernel {
    /// The RHS finite-difference sweep (640 flops/point, `yy-mhd`).
    pub const RHS: u8 = 0;
    /// RK4 state combines (axpy / assign-axpy over the 8 state arrays).
    pub const RK4_COMBINE: u8 = 1;
    /// Halo region pack (owned boundary bands → message buffers).
    pub const HALO_PACK: u8 = 2;
    /// Halo region unpack (message buffers → ghost bands).
    pub const HALO_UNPACK: u8 = 3;
    /// Overset donate: bilinear interpolation + tangent rotation of
    /// donor columns for the partner panel.
    pub const OVERSET_DONATE: u8 = 4;
    /// Overset fill: placing received (or locally interpolated) columns
    /// into the target frame.
    pub const OVERSET_FILL: u8 = 5;
    /// Solver health scan (NaN/Inf + positivity floors).
    pub const HEALTH_SCAN: u8 = 6;
    /// Output pipeline: checkpoint/snapshot shard pack, encode (delta +
    /// RLE) and file write. `flops` stays 0 — the slot exists so the
    /// roofline table shows where the output bytes and wall time go.
    pub const OUTPUT: u8 = 7;
    /// Number of kernels.
    pub const COUNT: usize = 8;

    /// Kernel name for reports and exposition labels.
    pub fn name(id: u8) -> &'static str {
        match id {
            RHS => "rhs",
            RK4_COMBINE => "rk4_combine",
            HALO_PACK => "halo_pack",
            HALO_UNPACK => "halo_unpack",
            OVERSET_DONATE => "overset_donate",
            OVERSET_FILL => "overset_fill",
            HEALTH_SCAN => "health_scan",
            OUTPUT => "output",
            _ => "unknown",
        }
    }
}

/// One site's contribution to a kernel's counters. All counts are exact
/// (derived from loop bounds and per-point constants, never sampled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTally {
    /// Grid points (or values, for copy kernels) processed.
    pub points: u64,
    /// Innermost-loop executions. For a kernel that makes one radial pass
    /// per point this equals `points / vector-length`; fused multi-pass
    /// kernels (the RHS) execute several inner loops per column.
    pub loops: u64,
    /// Total inner-loop trip count — the ES "vector element" counter.
    /// `vector_elements / loops` is the equivalent vector length; for a
    /// single-pass kernel it equals `points`, and for a P-pass fused
    /// kernel it is `P × points` (so the ratio stays the radial extent).
    pub vector_elements: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Modeled bytes read (stencil/table traffic, not cache-measured).
    pub bytes_read: u64,
    /// Modeled bytes written.
    pub bytes_written: u64,
}

/// Per-kernel atomic counter cell.
#[derive(Debug, Default)]
struct KernelCell {
    calls: AtomicU64,
    points: AtomicU64,
    loops: AtomicU64,
    vector_elements: AtomicU64,
    flops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    wall_ns: AtomicU64,
}

/// The per-rank performance-counter registry: one cell per kernel id,
/// behind an enabled flag with the flight recorder's fast-path
/// discipline (one relaxed load when disabled).
///
/// All mutation is relaxed-atomic, so a set can be shared (`Arc`)
/// between the solver thread and a snapshotting sampler or exporter.
#[derive(Debug)]
pub struct CounterSet {
    enabled: AtomicBool,
    cells: [KernelCell; kernel::COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        CounterSet::new()
    }
}

impl CounterSet {
    /// A zeroed, **disabled** counter set.
    pub fn new() -> Self {
        CounterSet { enabled: AtomicBool::new(false), cells: Default::default() }
    }

    /// A zeroed, enabled counter set.
    pub fn enabled() -> Self {
        let set = CounterSet::new();
        set.set_enabled(true);
        set
    }

    /// Whether tallies are currently recorded — the one relaxed load
    /// every site pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording (counts are kept across toggles).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Zero every cell (the stepping-window reset at loop entry).
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.calls.store(0, Ordering::Relaxed);
            cell.points.store(0, Ordering::Relaxed);
            cell.loops.store(0, Ordering::Relaxed);
            cell.vector_elements.store(0, Ordering::Relaxed);
            cell.flops.store(0, Ordering::Relaxed);
            cell.bytes_read.store(0, Ordering::Relaxed);
            cell.bytes_written.store(0, Ordering::Relaxed);
            cell.wall_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Tally one kernel invocation. No-op (one relaxed load) when
    /// disabled.
    #[inline]
    pub fn add(&self, id: u8, t: KernelTally) {
        if !self.is_enabled() {
            return;
        }
        self.add_always(id, t);
    }

    fn add_always(&self, id: u8, t: KernelTally) {
        let c = &self.cells[id as usize];
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.points.fetch_add(t.points, Ordering::Relaxed);
        c.loops.fetch_add(t.loops, Ordering::Relaxed);
        c.vector_elements.fetch_add(t.vector_elements, Ordering::Relaxed);
        c.flops.fetch_add(t.flops, Ordering::Relaxed);
        c.bytes_read.fetch_add(t.bytes_read, Ordering::Relaxed);
        c.bytes_written.fetch_add(t.bytes_written, Ordering::Relaxed);
    }

    /// Start a wall-time sample: `Some(now)` when enabled, `None` (no
    /// clock read) when disabled. Pair with [`CounterSet::add_timed`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Tally one invocation plus the wall time since `t0` (from
    /// [`CounterSet::timer`]). When `t0` is `None` the set was disabled
    /// at span start; re-check once and drop the span.
    #[inline]
    pub fn add_timed(&self, id: u8, t: KernelTally, t0: Option<Instant>) {
        let Some(t0) = t0 else {
            return;
        };
        if !self.is_enabled() {
            return;
        }
        self.add_always(id, t);
        self.cells[id as usize]
            .wall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// An immutable copy of every cell.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            kernels: std::array::from_fn(|i| {
                let c = &self.cells[i];
                KernelSnapshot {
                    calls: c.calls.load(Ordering::Relaxed),
                    points: c.points.load(Ordering::Relaxed),
                    loops: c.loops.load(Ordering::Relaxed),
                    vector_elements: c.vector_elements.load(Ordering::Relaxed),
                    flops: c.flops.load(Ordering::Relaxed),
                    bytes_read: c.bytes_read.load(Ordering::Relaxed),
                    bytes_written: c.bytes_written.load(Ordering::Relaxed),
                    wall_ns: c.wall_ns.load(Ordering::Relaxed),
                }
            }),
        }
    }
}

/// Immutable per-kernel counter state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Kernel invocations.
    pub calls: u64,
    /// Grid points / values processed.
    pub points: u64,
    /// Innermost-loop executions.
    pub loops: u64,
    /// Total inner-loop trip count (ES vector element counter).
    pub vector_elements: u64,
    /// Floating-point operations (exact).
    pub flops: u64,
    /// Modeled bytes read.
    pub bytes_read: u64,
    /// Modeled bytes written.
    pub bytes_written: u64,
    /// Wall time attributed to the kernel (ns).
    pub wall_ns: u64,
}

/// Words per kernel in the f64 merge encoding.
const WORDS_PER_KERNEL: usize = 8;

/// Number of f64 words [`CounterSnapshot::to_f64s`] produces.
pub const COUNTER_MERGE_WORDS: usize = WORDS_PER_KERNEL * kernel::COUNT;

impl KernelSnapshot {
    /// Achieved MFLOPS over the kernel's attributed wall time (0 when
    /// untimed).
    pub fn mflops(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.flops as f64 / (self.wall_ns as f64 / 1e9) / 1e6
        }
    }

    /// Arithmetic intensity: flops per modeled byte moved.
    pub fn intensity(&self) -> f64 {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }

    /// Equivalent vector length `vector_elements / loops` — what the ES
    /// average vector length counter reports for a radially-vectorized
    /// loop. Decomposition-invariant for the fused RHS: both numerator
    /// and denominator scale with the pass count, so the ratio stays the
    /// radial extent of the inner loop.
    pub fn avg_vector_length(&self) -> f64 {
        if self.loops == 0 {
            0.0
        } else {
            self.vector_elements as f64 / self.loops as f64
        }
    }
}

/// Immutable all-kernel counter state: what crosses rank boundaries and
/// lands in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Per-kernel snapshots, indexed by [`kernel`] id.
    pub kernels: [KernelSnapshot; kernel::COUNT],
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot { kernels: [KernelSnapshot::default(); kernel::COUNT] }
    }
}

impl CounterSnapshot {
    /// Whether any kernel recorded anything.
    pub fn is_empty(&self) -> bool {
        self.kernels.iter().all(|k| k.calls == 0)
    }

    /// Sum of per-kernel FLOP counts — the number the aggregate
    /// [`crate::hist`]-style property test pins against the scalar
    /// flop meter.
    pub fn total_flops(&self) -> u64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }

    /// Elementwise merge (every field adds — wall times are per-rank
    /// attributions, so their sum is all-rank seconds like the phase
    /// breakdown). Associative and commutative with the default as
    /// identity.
    pub fn merged(self, other: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            kernels: std::array::from_fn(|i| {
                let (a, b) = (self.kernels[i], other.kernels[i]);
                KernelSnapshot {
                    calls: a.calls + b.calls,
                    points: a.points + b.points,
                    loops: a.loops + b.loops,
                    vector_elements: a.vector_elements + b.vector_elements,
                    flops: a.flops + b.flops,
                    bytes_read: a.bytes_read + b.bytes_read,
                    bytes_written: a.bytes_written + b.bytes_written,
                    wall_ns: a.wall_ns + b.wall_ns,
                }
            }),
        }
    }

    /// All cells as f64 words for an elementwise-Sum allreduce. Exact
    /// while every count stays below 2⁵³.
    pub fn to_f64s(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(COUNTER_MERGE_WORDS);
        for k in &self.kernels {
            v.extend_from_slice(&[
                k.calls as f64,
                k.points as f64,
                k.loops as f64,
                k.vector_elements as f64,
                k.flops as f64,
                k.bytes_read as f64,
                k.bytes_written as f64,
                k.wall_ns as f64,
            ]);
        }
        v
    }

    /// Rebuild from [`CounterSnapshot::to_f64s`] words.
    pub fn from_f64s(words: &[f64]) -> CounterSnapshot {
        assert_eq!(words.len(), COUNTER_MERGE_WORDS, "merged counter word count");
        CounterSnapshot {
            kernels: std::array::from_fn(|i| {
                let w = &words[i * WORDS_PER_KERNEL..(i + 1) * WORDS_PER_KERNEL];
                KernelSnapshot {
                    calls: w[0] as u64,
                    points: w[1] as u64,
                    loops: w[2] as u64,
                    vector_elements: w[3] as u64,
                    flops: w[4] as u64,
                    bytes_read: w[5] as u64,
                    bytes_written: w[6] as u64,
                    wall_ns: w[7] as u64,
                }
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(points: u64, flops: u64) -> KernelTally {
        KernelTally {
            points,
            loops: points / 8,
            vector_elements: points,
            flops,
            bytes_read: 10 * points,
            bytes_written: points,
        }
    }

    #[test]
    fn disabled_set_records_nothing() {
        let set = CounterSet::new();
        set.add(kernel::RHS, tally(64, 640));
        assert!(set.timer().is_none(), "disabled set must not read the clock");
        set.add_timed(kernel::RHS, tally(64, 640), None);
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn enabled_set_tallies_exactly() {
        let set = CounterSet::enabled();
        set.add(kernel::RHS, tally(64, 640 * 64));
        set.add(kernel::RHS, tally(64, 640 * 64));
        set.add(kernel::RK4_COMBINE, tally(8, 112 * 8));
        let s = set.snapshot();
        let rhs = s.kernels[kernel::RHS as usize];
        assert_eq!(rhs.calls, 2);
        assert_eq!(rhs.points, 128);
        assert_eq!(rhs.loops, 16);
        assert_eq!(rhs.vector_elements, 128);
        assert_eq!(rhs.flops, 2 * 640 * 64);
        assert_eq!(rhs.avg_vector_length(), 8.0);
        assert_eq!(s.total_flops(), 2 * 640 * 64 + 112 * 8);
        assert!((rhs.intensity() - rhs.flops as f64 / (11.0 * 128.0)).abs() < 1e-12);
    }

    #[test]
    fn timed_add_attributes_wall_time() {
        let set = CounterSet::enabled();
        let t0 = set.timer();
        assert!(t0.is_some());
        set.add_timed(kernel::HEALTH_SCAN, tally(100, 1000), t0);
        let k = set.snapshot().kernels[kernel::HEALTH_SCAN as usize];
        assert_eq!(k.calls, 1);
        assert!(k.wall_ns > 0, "a timed add must accumulate wall time");
        assert!(k.mflops() > 0.0);
    }

    #[test]
    fn reset_zeroes_but_keeps_enablement() {
        let set = CounterSet::enabled();
        set.add(kernel::RHS, tally(64, 640));
        set.reset();
        assert!(set.snapshot().is_empty());
        assert!(set.is_enabled());
    }

    #[test]
    fn f64_words_roundtrip_and_sum_merge() {
        let a = CounterSet::enabled();
        a.add(kernel::RHS, tally(64, 640 * 64));
        a.add(kernel::HALO_PACK, tally(32, 0));
        let b = CounterSet::enabled();
        b.add(kernel::RHS, tally(16, 640 * 16));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        // Simulate the allreduce: elementwise sum of the words.
        let summed: Vec<f64> =
            sa.to_f64s().iter().zip(sb.to_f64s()).map(|(x, y)| x + y).collect();
        assert_eq!(CounterSnapshot::from_f64s(&summed), sa.merged(sb));
        assert_eq!(CounterSnapshot::from_f64s(&sa.to_f64s()), sa);
        assert_eq!(
            sa.merged(CounterSnapshot::default()),
            sa,
            "default is the merge identity"
        );
    }

    #[test]
    fn kernel_names_are_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..kernel::COUNT as u8 {
            let n = kernel::name(id);
            assert_ne!(n, "unknown");
            assert!(seen.insert(n), "duplicate kernel name {n}");
        }
        assert_eq!(kernel::name(200), "unknown");
    }

    #[test]
    fn derived_rates_are_zero_safe() {
        let k = KernelSnapshot::default();
        assert_eq!(k.mflops(), 0.0);
        assert_eq!(k.intensity(), 0.0);
        assert_eq!(k.avg_vector_length(), 0.0);
    }
}
