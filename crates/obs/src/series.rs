//! Multi-resolution science time-series store.
//!
//! The solver's physics diagnostics (energies, peak speeds, dt, step
//! wall, dominant azimuthal mode) are sampled at a fixed cadence, but a
//! long run produces far more samples than any fixed-memory process
//! should retain. The [`SeriesStore`] keeps, per named channel:
//!
//! * a **raw tail** — the most recent `raw_capacity` samples verbatim,
//!   ring-buffered; and
//! * a ladder of **downsampled tiers** — buckets of 4×, 16×, 64×, …
//!   consecutive samples (widths configurable), each bucket holding the
//!   *exact* min / mean / max of the samples it covers, again
//!   ring-buffered at a fixed bucket count per tier.
//!
//! Memory is therefore bounded at construction time
//! (`raw_capacity + tiers × tier_capacity` slots per channel) no matter
//! how long the run is, while the store can still answer both "what
//! happened in the last few hundred steps" (raw) and "what was the
//! envelope over the whole run" (coarse tiers). Bucket aggregates are
//! exact, not approximate: each closed bucket's min/mean/max equals a
//! recomputation over the covered sample window — the
//! `tier_aggregates_are_exact` property below proves this survives any
//! amount of ring wraparound.
//!
//! The store is plain data, no locks: the drivers feed it from the
//! sampling path (one owner), and exporters read it after the run (or
//! render snapshots of it into Prometheus gauge text).

use crate::json::num;

/// Sizing policy for a [`SeriesStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSpec {
    /// Samples kept verbatim in the raw tail ring.
    pub raw_capacity: usize,
    /// Bucket widths (samples per bucket) of the downsampling tiers,
    /// finest first. Each must be ≥ 2 and strictly increasing.
    pub tier_widths: Vec<u64>,
    /// Closed buckets kept per tier ring.
    pub tier_capacity: usize,
}

impl Default for SeriesSpec {
    fn default() -> Self {
        // 256 raw + 3 tiers × 128 buckets covers the last 256 samples
        // exactly and the last 64×128 = 8192 samples in envelope form,
        // in ~4.5 KiB per channel.
        SeriesSpec { raw_capacity: 256, tier_widths: vec![4, 16, 64], tier_capacity: 128 }
    }
}

/// One closed (or accumulating) downsample bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Index (0-based, monotonically increasing) of the first sample
    /// this bucket covers.
    pub first: u64,
    /// Samples absorbed so far (== tier width once closed).
    pub count: u64,
    /// Minimum over the covered samples.
    pub min: f64,
    /// Maximum over the covered samples.
    pub max: f64,
    /// Sum over the covered samples (mean = sum / count).
    pub sum: f64,
}

impl Bucket {
    fn empty(first: u64) -> Bucket {
        Bucket { first, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 }
    }

    fn absorb(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        // Explicit comparisons (not f64::min/max) so a NaN sample
        // poisons the sum/mean but cannot silently shrink the envelope.
        if v < self.min || self.min.is_infinite() {
            self.min = v;
        }
        if v > self.max || self.max.is_infinite() {
            self.max = v;
        }
    }

    /// Mean of the covered samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One downsampling tier: a ring of closed buckets plus the bucket
/// currently accumulating.
#[derive(Debug, Clone)]
pub struct Tier {
    /// Samples per bucket.
    pub width: u64,
    open: Bucket,
    ring: Vec<Bucket>,
    head: usize,
    capacity: usize,
}

impl Tier {
    fn new(width: u64, capacity: usize) -> Tier {
        Tier { width, open: Bucket::empty(0), ring: Vec::with_capacity(capacity), head: 0, capacity }
    }

    fn push(&mut self, index: u64, v: f64) {
        if self.open.count == 0 {
            self.open.first = index;
        }
        self.open.absorb(v);
        if self.open.count == self.width {
            let closed = self.open;
            if self.ring.len() < self.capacity {
                self.ring.push(closed);
            } else {
                self.ring[self.head] = closed;
                self.head = (self.head + 1) % self.capacity;
            }
            self.open = Bucket::empty(index + 1);
        }
    }

    /// Closed buckets in chronological order (oldest retained first).
    pub fn buckets(&self) -> Vec<Bucket> {
        let mut out = Vec::with_capacity(self.ring.len());
        for i in 0..self.ring.len() {
            out.push(self.ring[(self.head + i) % self.ring.len()]);
        }
        out
    }
}

/// One named channel: raw tail ring + downsampling tiers.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Channel name (stable identifier, e.g. `kinetic`, `dt`).
    pub name: String,
    pushed: u64,
    raw: Vec<(u64, f64)>,
    raw_head: usize,
    raw_capacity: usize,
    tiers: Vec<Tier>,
}

impl Channel {
    fn new(name: &str, spec: &SeriesSpec) -> Channel {
        Channel {
            name: name.to_string(),
            pushed: 0,
            raw: Vec::with_capacity(spec.raw_capacity),
            raw_head: 0,
            raw_capacity: spec.raw_capacity,
            tiers: spec.tier_widths.iter().map(|&w| Tier::new(w, spec.tier_capacity)).collect(),
        }
    }

    fn push(&mut self, v: f64) {
        let index = self.pushed;
        self.pushed += 1;
        if self.raw.len() < self.raw_capacity {
            self.raw.push((index, v));
        } else {
            self.raw[self.raw_head] = (index, v);
            self.raw_head = (self.raw_head + 1) % self.raw_capacity;
        }
        for t in &mut self.tiers {
            t.push(index, v);
        }
    }

    /// Total samples ever pushed into this channel.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The raw tail in chronological order, as `(sample index, value)`.
    pub fn raw_tail(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.raw.len());
        for i in 0..self.raw.len() {
            out.push(self.raw[(self.raw_head + i) % self.raw.len()]);
        }
        out
    }

    /// The downsampling tiers, finest first.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// The most recent value, if any sample was pushed.
    pub fn latest(&self) -> Option<f64> {
        self.raw_tail().last().map(|&(_, v)| v)
    }

    /// The last `n` raw values in chronological order (fewer if the
    /// channel holds fewer).
    pub fn tail_values(&self, n: usize) -> Vec<f64> {
        let tail = self.raw_tail();
        let skip = tail.len().saturating_sub(n);
        tail[skip..].iter().map(|&(_, v)| v).collect()
    }
}

/// Fixed-memory multi-resolution store over a set of named channels, all
/// fed in lock-step: one [`SeriesStore::push_row`] per sample cadence.
#[derive(Debug, Clone)]
pub struct SeriesStore {
    spec: SeriesSpec,
    channels: Vec<Channel>,
}

impl SeriesStore {
    /// A store with one channel per name, sized by `spec`.
    pub fn new(names: &[&str], spec: SeriesSpec) -> SeriesStore {
        assert!(spec.raw_capacity > 0, "raw tail must hold at least one sample");
        assert!(spec.tier_capacity > 0, "tiers must hold at least one bucket");
        let mut prev = 1;
        for &w in &spec.tier_widths {
            assert!(w >= 2 && w > prev, "tier widths must be >= 2 and strictly increasing");
            prev = w;
        }
        let channels = names.iter().map(|n| Channel::new(n, &spec)).collect();
        SeriesStore { spec, channels }
    }

    /// The sizing policy this store was built with.
    pub fn spec(&self) -> &SeriesSpec {
        &self.spec
    }

    /// All channels, in declaration order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Look up a channel by name.
    pub fn channel(&self, name: &str) -> Option<&Channel> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// Rows pushed so far (every channel advances together).
    pub fn rows(&self) -> u64 {
        self.channels.first().map(|c| c.pushed).unwrap_or(0)
    }

    /// Push one sample row, `values` aligned with the channel order the
    /// store was constructed with.
    pub fn push_row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.channels.len(), "row width must match channel count");
        for (c, &v) in self.channels.iter_mut().zip(values) {
            c.push(v);
        }
    }

    /// Render the store as a JSON object (the report's `telemetry`
    /// section): per channel, the sample count, raw tail and closed
    /// tier buckets.
    pub fn to_json(&self) -> String {
        let mut chans = Vec::with_capacity(self.channels.len());
        for c in &self.channels {
            let raw: Vec<String> = c
                .raw_tail()
                .iter()
                .map(|&(i, v)| format!("[{},{}]", i, num(v)))
                .collect();
            let tiers: Vec<String> = c
                .tiers()
                .iter()
                .map(|t| {
                    let buckets: Vec<String> = t
                        .buckets()
                        .iter()
                        .map(|b| {
                            format!(
                                "[{},{},{},{},{}]",
                                b.first,
                                b.count,
                                num(b.min),
                                num(b.mean()),
                                num(b.max)
                            )
                        })
                        .collect();
                    format!(
                        "{{\"width\":{},\"buckets\":[{}]}}",
                        t.width,
                        buckets.join(",")
                    )
                })
                .collect();
            chans.push(format!(
                concat!(
                    "{{\"name\":\"{}\",\"pushed\":{},",
                    "\"raw\":[{}],",
                    "\"tiers\":[{}]}}"
                ),
                crate::json::escape(&c.name),
                c.pushed,
                raw.join(","),
                tiers.join(",")
            ));
        }
        format!(
            "{{\"rows\":{},\"raw_capacity\":{},\"tier_capacity\":{},\"channels\":[{}]}}",
            self.rows(),
            self.spec.raw_capacity,
            self.spec.tier_capacity,
            chans.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yy_testkit::{check, tk_assert};

    fn tiny_spec() -> SeriesSpec {
        SeriesSpec { raw_capacity: 8, tier_widths: vec![2, 4], tier_capacity: 3 }
    }

    #[test]
    fn raw_tail_keeps_the_newest_samples_in_order() {
        let mut s = SeriesStore::new(&["a"], tiny_spec());
        for i in 0..12 {
            s.push_row(&[i as f64]);
        }
        let tail = s.channel("a").unwrap().raw_tail();
        assert_eq!(tail.len(), 8);
        assert_eq!(tail.first(), Some(&(4, 4.0)));
        assert_eq!(tail.last(), Some(&(11, 11.0)));
        for w in tail.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1, "tail indices must be consecutive");
        }
        assert_eq!(s.channel("a").unwrap().latest(), Some(11.0));
        assert_eq!(s.channel("a").unwrap().tail_values(3), vec![9.0, 10.0, 11.0]);
    }

    #[test]
    fn buckets_close_at_width_and_ring_evicts_oldest() {
        let mut s = SeriesStore::new(&["a"], tiny_spec());
        // 2-wide tier with capacity 3: after 10 samples, 5 buckets have
        // closed and the ring holds the last 3 (first = 4, 6, 8).
        for i in 0..10 {
            s.push_row(&[i as f64]);
        }
        let t = &s.channel("a").unwrap().tiers()[0];
        let buckets = t.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].first, 4);
        assert_eq!(buckets[2].first, 8);
        assert_eq!(buckets[2].min, 8.0);
        assert_eq!(buckets[2].max, 9.0);
        assert_eq!(buckets[2].mean(), 8.5);
    }

    #[test]
    fn json_snapshot_parses_and_carries_every_channel() {
        let mut s = SeriesStore::new(&["kinetic", "dt"], tiny_spec());
        for i in 0..20 {
            s.push_row(&[i as f64, 1.0 / (i + 1) as f64]);
        }
        let doc = crate::json::Json::parse(&s.to_json()).expect("telemetry JSON parses");
        let chans = doc.get("channels").unwrap().as_arr().unwrap();
        assert_eq!(chans.len(), 2);
        assert_eq!(chans[0].get("name").unwrap().as_str(), Some("kinetic"));
        assert_eq!(doc.get("rows").unwrap().as_f64(), Some(20.0));
        let tiers = chans[1].get("tiers").unwrap().as_arr().unwrap();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].get("width").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn nan_poisons_the_mean_but_keeps_the_envelope() {
        let mut s = SeriesStore::new(&["a"], tiny_spec());
        s.push_row(&[1.0]);
        s.push_row(&[f64::NAN]);
        let b = s.channel("a").unwrap().tiers()[0].buckets()[0];
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 1.0);
        assert!(b.mean().is_nan());
    }

    /// The tentpole invariant: every *closed* bucket's min/mean/max is
    /// exactly the aggregate of the samples it claims to cover, for
    /// random specs and sample counts — i.e. downsampling survives any
    /// amount of ring wraparound without smearing windows.
    #[test]
    fn tier_aggregates_are_exact_under_wraparound() {
        check(
            "series_tier_aggregates_exact",
            |g| {
                let raw_cap = g.range_usize(1, 16);
                let tier_cap = g.range_usize(1, 8);
                let w0 = g.range_usize(2, 6) as u64;
                let w1 = w0 * g.range_usize(2, 4) as u64;
                let samples = g.vec_f64(-1e3, 1e3, 1, 400);
                (raw_cap, tier_cap, w0, w1, samples)
            },
            |(raw_cap, tier_cap, w0, w1, samples)| {
                let spec = SeriesSpec {
                    raw_capacity: *raw_cap,
                    tier_widths: vec![*w0, *w1],
                    tier_capacity: *tier_cap,
                };
                let mut s = SeriesStore::new(&["x"], spec);
                for &v in samples {
                    s.push_row(&[v]);
                }
                let c = s.channel("x").unwrap();
                tk_assert!(c.pushed() == samples.len() as u64, "pushed count");
                for t in c.tiers() {
                    for b in t.buckets() {
                        tk_assert!(b.count == t.width, "closed bucket is full");
                        let window =
                            &samples[b.first as usize..(b.first + b.count) as usize];
                        let min = window.iter().copied().fold(f64::INFINITY, f64::min);
                        let max = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        let sum: f64 = window.iter().sum();
                        tk_assert!(b.min == min, "min exact: {} vs {}", b.min, min);
                        tk_assert!(b.max == max, "max exact: {} vs {}", b.max, max);
                        tk_assert!(b.sum == sum, "sum exact: {} vs {}", b.sum, sum);
                    }
                }
                // The raw tail is always the literal newest samples.
                let tail = c.raw_tail();
                let skip = samples.len().saturating_sub(*raw_cap);
                for (k, &(i, v)) in tail.iter().enumerate() {
                    tk_assert!(i as usize == skip + k, "tail index");
                    tk_assert!(v == samples[skip + k], "tail value");
                }
                Ok(())
            },
        );
    }
}
