//! A small named-metrics registry: counters, gauges and histograms that
//! drivers register by name and export into the run report, in the
//! spirit of the paper's `MPIPROGINF` counter block.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::{escape, num};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle (clone to share).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle holding an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Arc<Histogram>>,
}

/// The registry: get-or-create metric handles by name, snapshot them
/// all at once. Names sort alphabetically in exports, so output is
/// deterministic.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use (initial value 0).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(inner.hists.entry(name.to_string()).or_default())
    }

    /// Snapshot every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            hists: inner.hists.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, name-sorted.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Render as a JSON object: `{"counters":{...},"gauges":{...},
    /// "histograms":{...}}` with each histogram summarised by
    /// count/mean/p50/p90/p99/max.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!(r#""{}":{v}"#, escape(k))).collect();
        let gauges: Vec<String> =
            self.gauges.iter().map(|(k, v)| format!(r#""{}":{}"#, escape(k), num(*v))).collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| format!(r#""{}":{}"#, escape(k), hist_json(h)))
            .collect();
        format!(
            r#"{{"counters":{{{}}},"gauges":{{{}}},"histograms":{{{}}}}}"#,
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

/// Render one histogram snapshot as a JSON object with its summary
/// quantiles plus the non-empty buckets as `[index, count]` pairs
/// (enough to reconstruct the full distribution).
pub fn hist_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("[{i},{c}]"))
        .collect();
    format!(
        r#"{{"count":{},"sum":{},"mean":{},"p50":{},"p90":{},"p99":{},"max":{},"buckets":[{}]}}"#,
        h.count,
        h.sum,
        num(h.mean()),
        h.p50(),
        h.p90(),
        h.p99(),
        h.max,
        buckets.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("steps").inc();
        reg.counter("steps").add(4);
        reg.gauge("dt").set(0.5);
        reg.histogram("wait_ns").record(100);
        reg.histogram("wait_ns").record(200);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("steps".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("dt".to_string(), 0.5)]);
        assert_eq!(snap.hists[0].1.count, 2);
    }

    #[test]
    fn snapshot_json_parses_and_is_sorted() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(2);
        reg.gauge("g").set(1.25);
        reg.histogram("h").record(3);
        let json = reg.snapshot().to_json();
        let doc = Json::parse(&json).expect("metrics JSON must parse");
        let counters = doc.get("counters").unwrap().as_obj().unwrap();
        assert_eq!(counters[0].0, "alpha", "names must sort");
        assert_eq!(counters[1].0, "zeta");
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("p50").unwrap().as_f64(), Some(3.0));
        let buckets = h.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 1);
    }
}
