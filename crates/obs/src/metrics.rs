//! Zero-dependency live metrics endpoint: Prometheus text exposition
//! over a std `TcpListener`.
//!
//! A long supervised run should be watchable without waiting for the
//! final `RunReport`. Rank 0 periodically renders the allreduced
//! [`CounterSnapshot`] into the Prometheus text format (version 0.0.4 —
//! plain `# TYPE` lines plus `name{label="v"} value` samples, parseable
//! by Prometheus, `promtool`, or a bare `nc`) and publishes it to a
//! [`MetricsHub`]. A [`MetricsServer`] answers every HTTP request on its
//! port with the hub's current body. The server is a single poll-loop
//! thread over a nonblocking listener — no async runtime, no HTTP
//! library, nothing beyond `std::net`.
//!
//! The hub/server split keeps the solver decoupled from the socket: the
//! solver only ever locks a `Mutex<String>` for a swap, and tests can
//! inject a hub and scrape it with a plain `TcpStream` (the curl-free CI
//! check).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::counters::{kernel, CounterSnapshot};

/// Shared exposition body: the solver publishes, the server (and tests)
/// scrape.
#[derive(Debug, Default)]
pub struct MetricsHub {
    body: Mutex<String>,
}

impl MetricsHub {
    /// A hub with an empty body.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Replace the exposition body with a freshly rendered snapshot.
    pub fn publish(&self, body: String) {
        *self.body.lock().unwrap_or_else(|e| e.into_inner()) = body;
    }

    /// The current exposition body.
    pub fn scrape(&self) -> String {
        self.body.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Render a merged counter snapshot (plus run-level gauges) in the
/// Prometheus text exposition format.
pub fn prometheus_text(snap: &CounterSnapshot, step: u64, queue_depth: u64) -> String {
    prometheus_text_with_phases(snap, step, queue_depth, &[])
}

/// Push the `# HELP` + `# TYPE` header pair for a metric family. Every
/// family in the exposition goes through here, so the parser test can
/// require both lines for every sample.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// [`prometheus_text`] plus per-phase wall gauges: `phase_wall_s` is
/// `(phase name, allreduced wall seconds)` pairs, rendered as
/// `yy_phase_wall_seconds{phase="..."}` — this is where the PR 8 io
/// telemetry (`writer_wait`) becomes scrapeable live instead of only in
/// the final report.
pub fn prometheus_text_with_phases(
    snap: &CounterSnapshot,
    step: u64,
    queue_depth: u64,
    phase_wall_s: &[(&str, f64)],
) -> String {
    let mut out = String::with_capacity(4096);
    family(&mut out, "yy_step", "gauge", "Current solver step.");
    out.push_str(&format!("yy_step {step}\n"));
    family(&mut out, "yy_queue_depth", "gauge", "Mailbox queue depth after the last step.");
    out.push_str(&format!("yy_queue_depth {queue_depth}\n"));
    type Get = fn(&crate::counters::KernelSnapshot) -> u64;
    let counters: [(&str, &str, Get); 6] = [
        ("yy_kernel_calls_total", "Kernel invocations since run start.", |k| k.calls),
        ("yy_kernel_points_total", "Grid points the kernel processed.", |k| k.points),
        ("yy_kernel_flops_total", "Exact modeled floating-point operations.", |k| k.flops),
        ("yy_kernel_bytes_read_total", "Modeled bytes read by the kernel.", |k| k.bytes_read),
        ("yy_kernel_bytes_written_total", "Modeled bytes written by the kernel.", |k| {
            k.bytes_written
        }),
        ("yy_kernel_wall_ns_total", "Wall nanoseconds spent in the kernel.", |k| k.wall_ns),
    ];
    for (metric, help, get) in counters {
        family(&mut out, metric, "counter", help);
        for (i, k) in snap.kernels.iter().enumerate() {
            out.push_str(&format!(
                "{metric}{{kernel=\"{}\"}} {}\n",
                kernel::name(i as u8),
                get(k)
            ));
        }
    }
    family(&mut out, "yy_kernel_mflops", "gauge", "Achieved MFLOPS over the last window.");
    for (i, k) in snap.kernels.iter().enumerate() {
        out.push_str(&format!(
            "yy_kernel_mflops{{kernel=\"{}\"}} {}\n",
            kernel::name(i as u8),
            crate::json::num(k.mflops())
        ));
    }
    if !phase_wall_s.is_empty() {
        family(
            &mut out,
            "yy_phase_wall_seconds",
            "gauge",
            "Allreduced wall seconds per solver phase.",
        );
        for (name, secs) in phase_wall_s {
            out.push_str(&format!(
                "yy_phase_wall_seconds{{phase=\"{name}\"}} {}\n",
                crate::json::num(*secs)
            ));
        }
    }
    out
}

/// Render the doctor's post-run gauges: critical-path phase shares and
/// the top straggler's world rank (−1 when none). The supervisor appends
/// this to the hub's final body so the endpoint carries the diagnosis.
pub fn doctor_gauges_text(g: &crate::analysis::DoctorGauges) -> String {
    let mut out = String::with_capacity(256);
    if !g.shares.is_empty() {
        family(
            &mut out,
            "yy_critical_path_share",
            "gauge",
            "Share of analyzed steps each phase gated.",
        );
        for (phase, share) in &g.shares {
            out.push_str(&format!(
                "yy_critical_path_share{{phase=\"{phase}\"}} {}\n",
                crate::json::num(*share)
            ));
        }
    }
    family(
        &mut out,
        "yy_top_straggler_rank",
        "gauge",
        "World rank of the strongest straggler suspect (-1 when none).",
    );
    out.push_str(&format!("yy_top_straggler_rank {}\n", g.top_straggler));
    out
}

/// One science-telemetry snapshot for the live endpoint: the latest
/// sampled physics values plus the watchdog's firing state, rendered as
/// Prometheus gauges. The supervisor appends this to the body it
/// publishes at the metrics cadence, so `yycore watch` (or any scraper)
/// sees the physics plane next to the perf counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScienceGauges {
    /// `(component name, energy)` pairs — kinetic / magnetic / thermal.
    pub energy: Vec<(String, f64)>,
    /// Latest CFL time step.
    pub dt: f64,
    /// Latest maximum flow speed.
    pub max_speed: f64,
    /// Latest maximum field strength.
    pub max_b: f64,
    /// Dominant azimuthal mode m of the equatorial vorticity ring
    /// (−1 when the run does not probe it).
    pub dominant_m: i64,
    /// `(rule name, currently firing, times fired)` per watchdog rule.
    pub alerts: Vec<(String, bool, u32)>,
}

/// Render [`ScienceGauges`] in the Prometheus text format.
pub fn science_gauges_text(g: &ScienceGauges) -> String {
    let mut out = String::with_capacity(512);
    if !g.energy.is_empty() {
        family(&mut out, "yy_energy", "gauge", "Volume-integrated energy by component.");
        for (component, e) in &g.energy {
            out.push_str(&format!(
                "yy_energy{{component=\"{component}\"}} {}\n",
                crate::json::num(*e)
            ));
        }
    }
    family(&mut out, "yy_dt", "gauge", "Latest CFL time step.");
    out.push_str(&format!("yy_dt {}\n", crate::json::num(g.dt)));
    family(&mut out, "yy_max_speed", "gauge", "Maximum flow speed over the grid.");
    out.push_str(&format!("yy_max_speed {}\n", crate::json::num(g.max_speed)));
    family(&mut out, "yy_max_b", "gauge", "Maximum magnetic field strength over the grid.");
    out.push_str(&format!("yy_max_b {}\n", crate::json::num(g.max_b)));
    family(
        &mut out,
        "yy_dominant_m",
        "gauge",
        "Dominant azimuthal mode of the equatorial vorticity ring (-1 when unprobed).",
    );
    out.push_str(&format!("yy_dominant_m {}\n", g.dominant_m));
    if !g.alerts.is_empty() {
        family(&mut out, "yy_alert_active", "gauge", "1 while the watchdog rule is firing.");
        for (rule, firing, _) in &g.alerts {
            out.push_str(&format!(
                "yy_alert_active{{rule=\"{rule}\"}} {}\n",
                *firing as u8
            ));
        }
        family(&mut out, "yy_alert_fired_total", "counter", "Fire edges per watchdog rule.");
        for (rule, _, fired) in &g.alerts {
            out.push_str(&format!("yy_alert_fired_total{{rule=\"{rule}\"}} {fired}\n"));
        }
    }
    out
}

/// Minimal HTTP/1.0 server publishing a [`MetricsHub`] body on every
/// request. Bind with port 0 to let the OS choose (tests); stop via
/// [`MetricsServer::stop`] or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `127.0.0.1:port` and start answering requests with the
    /// hub's current body.
    pub fn start(hub: Arc<MetricsHub>, port: u16) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("yy-metrics".into())
            .spawn(move || serve(listener, hub, stop2))
            .expect("spawn metrics thread");
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the serving thread and join it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(listener: TcpListener, hub: Arc<MetricsHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Read whatever request line arrives (we answer any
                // path), bounded so a stalled client can't wedge us.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = hub.scrape();
                let resp = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{kernel, CounterSet, KernelTally};
    use std::net::TcpStream;

    fn sample_snapshot() -> CounterSnapshot {
        let set = CounterSet::enabled();
        set.add(
            kernel::RHS,
            KernelTally {
                points: 64,
                loops: 8,
                vector_elements: 64,
                flops: 640 * 64,
                bytes_read: 64 * 56 * 8,
                bytes_written: 64 * 8 * 8,
            },
        );
        set.snapshot()
    }

    /// The in-repo exposition parser: every sample line must be
    /// `name value` or `name{labels} value` with a parseable value, and
    /// every sample's family must have emitted BOTH a `# HELP` and a
    /// `# TYPE` header earlier in the body.
    fn assert_well_formed_exposition(text: &str) {
        let mut helped: Vec<&str> = Vec::new();
        let mut typed: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(rest.len() > name.len() + 1, "HELP without text in {line:?}");
                helped.push(name);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap_or("");
                assert!(
                    kind == "counter" || kind == "gauge" || kind == "histogram",
                    "bad TYPE kind in {line:?}"
                );
                typed.push(name);
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            let name_part = parts.next().unwrap_or("");
            let name = name_part.split('{').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable sample value in {line:?}");
            assert!(helped.contains(&name), "sample {line:?} has no # HELP {name}");
            assert!(typed.contains(&name), "sample {line:?} has no # TYPE {name}");
        }
    }

    #[test]
    fn exposition_has_help_and_type_for_every_sample() {
        let text = prometheus_text(&sample_snapshot(), 12, 3);
        assert!(text.contains("# HELP yy_kernel_flops_total "));
        assert!(text.contains("# TYPE yy_kernel_flops_total counter"));
        assert!(text.contains("yy_kernel_flops_total{kernel=\"rhs\"} 40960"));
        assert!(text.contains("yy_step 12"));
        assert!(text.contains("yy_queue_depth 3"));
        assert_well_formed_exposition(&text);
    }

    #[test]
    fn science_gauges_render_and_are_well_formed() {
        let g = ScienceGauges {
            energy: vec![
                ("kinetic".into(), 1.5),
                ("magnetic".into(), 0.25),
                ("thermal".into(), 7.0),
            ],
            dt: 1.25e-3,
            max_speed: 3.5,
            max_b: 0.125,
            dominant_m: 4,
            alerts: vec![("energy_blowup".into(), true, 1), ("dynamo_stall".into(), false, 0)],
        };
        let text = science_gauges_text(&g);
        assert!(text.contains("yy_energy{component=\"kinetic\"} 1.5"));
        assert!(text.contains("yy_dominant_m 4"));
        assert!(text.contains("yy_dt 0.00125"));
        assert!(text.contains("yy_alert_active{rule=\"energy_blowup\"} 1"));
        assert!(text.contains("yy_alert_active{rule=\"dynamo_stall\"} 0"));
        assert!(text.contains("yy_alert_fired_total{rule=\"energy_blowup\"} 1"));
        assert_well_formed_exposition(&text);
        // Appended to the counter exposition it stays well-formed — the
        // shape the supervisor actually publishes.
        let full = format!("{}{}", prometheus_text(&sample_snapshot(), 12, 3), text);
        assert_well_formed_exposition(&full);
        // An unprobed run renders -1 and no alert families.
        let bare = science_gauges_text(&ScienceGauges::default());
        assert!(bare.contains("yy_dominant_m -1\n") || bare.contains("yy_dominant_m 0\n"));
        assert!(!bare.contains("yy_alert_active"));
        assert_well_formed_exposition(&bare);
    }

    #[test]
    fn phase_and_doctor_gauges_render() {
        let phases = [("interior", 1.25), ("wait", 0.5), ("writer_wait", 0.03125)];
        let text = prometheus_text_with_phases(&sample_snapshot(), 3, 0, &phases);
        assert!(text.contains("# TYPE yy_phase_wall_seconds gauge"));
        assert!(text.contains("yy_phase_wall_seconds{phase=\"writer_wait\"} 0.03125"));
        // The output kernel slot is live in every kernel family.
        assert!(text.contains("yy_kernel_wall_ns_total{kernel=\"output\"} 0"));
        let g = crate::analysis::DoctorGauges {
            shares: vec![("wait".into(), 0.583), ("interior".into(), 0.417)],
            top_straggler: 1,
        };
        let dg = doctor_gauges_text(&g);
        assert!(dg.contains("yy_critical_path_share{phase=\"wait\"} 0.583"));
        assert!(dg.contains("yy_top_straggler_rank 1\n"));
        assert!(doctor_gauges_text(&Default::default()).contains("yy_top_straggler_rank -1"));
        // Appending doctor gauges keeps the exposition well-formed.
        assert_well_formed_exposition(&format!("{text}{dg}"));
    }

    #[test]
    fn server_serves_hub_body_over_tcp() {
        let hub = Arc::new(MetricsHub::new());
        hub.publish(prometheus_text(&sample_snapshot(), 5, 0));
        let mut server = MetricsServer::start(Arc::clone(&hub), 0).expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("response");
        assert!(resp.starts_with("HTTP/1.0 200 OK"));
        assert!(resp.contains("yy_kernel_flops_total{kernel=\"rhs\"} 40960"));

        // The body is live: republish and scrape again.
        hub.publish("yy_step 9\n".into());
        let mut stream = TcpStream::connect(addr).expect("connect 2");
        stream.write_all(b"GET / HTTP/1.0\r\n\r\n").expect("request 2");
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("response 2");
        assert!(resp.ends_with("yy_step 9\n"));
        server.stop();
    }
}
