//! Zero-dependency live metrics endpoint: Prometheus text exposition
//! over a std `TcpListener`.
//!
//! A long supervised run should be watchable without waiting for the
//! final `RunReport`. Rank 0 periodically renders the allreduced
//! [`CounterSnapshot`] into the Prometheus text format (version 0.0.4 —
//! plain `# TYPE` lines plus `name{label="v"} value` samples, parseable
//! by Prometheus, `promtool`, or a bare `nc`) and publishes it to a
//! [`MetricsHub`]. A [`MetricsServer`] answers every HTTP request on its
//! port with the hub's current body. The server is a single poll-loop
//! thread over a nonblocking listener — no async runtime, no HTTP
//! library, nothing beyond `std::net`.
//!
//! The hub/server split keeps the solver decoupled from the socket: the
//! solver only ever locks a `Mutex<String>` for a swap, and tests can
//! inject a hub and scrape it with a plain `TcpStream` (the curl-free CI
//! check).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::counters::{kernel, CounterSnapshot};

/// Shared exposition body: the solver publishes, the server (and tests)
/// scrape.
#[derive(Debug, Default)]
pub struct MetricsHub {
    body: Mutex<String>,
}

impl MetricsHub {
    /// A hub with an empty body.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Replace the exposition body with a freshly rendered snapshot.
    pub fn publish(&self, body: String) {
        *self.body.lock().unwrap_or_else(|e| e.into_inner()) = body;
    }

    /// The current exposition body.
    pub fn scrape(&self) -> String {
        self.body.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Render a merged counter snapshot (plus run-level gauges) in the
/// Prometheus text exposition format.
pub fn prometheus_text(snap: &CounterSnapshot, step: u64, queue_depth: u64) -> String {
    prometheus_text_with_phases(snap, step, queue_depth, &[])
}

/// [`prometheus_text`] plus per-phase wall gauges: `phase_wall_s` is
/// `(phase name, allreduced wall seconds)` pairs, rendered as
/// `yy_phase_wall_seconds{phase="..."}` — this is where the PR 8 io
/// telemetry (`writer_wait`) becomes scrapeable live instead of only in
/// the final report.
pub fn prometheus_text_with_phases(
    snap: &CounterSnapshot,
    step: u64,
    queue_depth: u64,
    phase_wall_s: &[(&str, f64)],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE yy_step gauge\n");
    out.push_str(&format!("yy_step {step}\n"));
    out.push_str("# TYPE yy_queue_depth gauge\n");
    out.push_str(&format!("yy_queue_depth {queue_depth}\n"));
    let counters: [(&str, fn(&crate::counters::KernelSnapshot) -> u64); 6] = [
        ("yy_kernel_calls_total", |k| k.calls),
        ("yy_kernel_points_total", |k| k.points),
        ("yy_kernel_flops_total", |k| k.flops),
        ("yy_kernel_bytes_read_total", |k| k.bytes_read),
        ("yy_kernel_bytes_written_total", |k| k.bytes_written),
        ("yy_kernel_wall_ns_total", |k| k.wall_ns),
    ];
    for (metric, get) in counters {
        out.push_str(&format!("# TYPE {metric} counter\n"));
        for (i, k) in snap.kernels.iter().enumerate() {
            out.push_str(&format!(
                "{metric}{{kernel=\"{}\"}} {}\n",
                kernel::name(i as u8),
                get(k)
            ));
        }
    }
    out.push_str("# TYPE yy_kernel_mflops gauge\n");
    for (i, k) in snap.kernels.iter().enumerate() {
        out.push_str(&format!(
            "yy_kernel_mflops{{kernel=\"{}\"}} {}\n",
            kernel::name(i as u8),
            crate::json::num(k.mflops())
        ));
    }
    if !phase_wall_s.is_empty() {
        out.push_str("# TYPE yy_phase_wall_seconds gauge\n");
        for (name, secs) in phase_wall_s {
            out.push_str(&format!(
                "yy_phase_wall_seconds{{phase=\"{name}\"}} {}\n",
                crate::json::num(*secs)
            ));
        }
    }
    out
}

/// Render the doctor's post-run gauges: critical-path phase shares and
/// the top straggler's world rank (−1 when none). The supervisor appends
/// this to the hub's final body so the endpoint carries the diagnosis.
pub fn doctor_gauges_text(g: &crate::analysis::DoctorGauges) -> String {
    let mut out = String::with_capacity(256);
    if !g.shares.is_empty() {
        out.push_str("# TYPE yy_critical_path_share gauge\n");
        for (phase, share) in &g.shares {
            out.push_str(&format!(
                "yy_critical_path_share{{phase=\"{phase}\"}} {}\n",
                crate::json::num(*share)
            ));
        }
    }
    out.push_str("# TYPE yy_top_straggler_rank gauge\n");
    out.push_str(&format!("yy_top_straggler_rank {}\n", g.top_straggler));
    out
}

/// Minimal HTTP/1.0 server publishing a [`MetricsHub`] body on every
/// request. Bind with port 0 to let the OS choose (tests); stop via
/// [`MetricsServer::stop`] or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `127.0.0.1:port` and start answering requests with the
    /// hub's current body.
    pub fn start(hub: Arc<MetricsHub>, port: u16) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("yy-metrics".into())
            .spawn(move || serve(listener, hub, stop2))
            .expect("spawn metrics thread");
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the serving thread and join it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(listener: TcpListener, hub: Arc<MetricsHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Read whatever request line arrives (we answer any
                // path), bounded so a stalled client can't wedge us.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = hub.scrape();
                let resp = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{kernel, CounterSet, KernelTally};
    use std::net::TcpStream;

    fn sample_snapshot() -> CounterSnapshot {
        let set = CounterSet::enabled();
        set.add(
            kernel::RHS,
            KernelTally {
                points: 64,
                loops: 8,
                vector_elements: 64,
                flops: 640 * 64,
                bytes_read: 64 * 56 * 8,
                bytes_written: 64 * 8 * 8,
            },
        );
        set.snapshot()
    }

    #[test]
    fn exposition_has_typed_counters_and_gauges() {
        let text = prometheus_text(&sample_snapshot(), 12, 3);
        assert!(text.contains("# TYPE yy_kernel_flops_total counter"));
        assert!(text.contains("yy_kernel_flops_total{kernel=\"rhs\"} 40960"));
        assert!(text.contains("yy_step 12"));
        assert!(text.contains("yy_queue_depth 3"));
        // Every sample line is `name value` or `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
        }
    }

    #[test]
    fn phase_and_doctor_gauges_render() {
        let phases = [("interior", 1.25), ("wait", 0.5), ("writer_wait", 0.03125)];
        let text = prometheus_text_with_phases(&sample_snapshot(), 3, 0, &phases);
        assert!(text.contains("# TYPE yy_phase_wall_seconds gauge"));
        assert!(text.contains("yy_phase_wall_seconds{phase=\"writer_wait\"} 0.03125"));
        // The output kernel slot is live in every kernel family.
        assert!(text.contains("yy_kernel_wall_ns_total{kernel=\"output\"} 0"));
        let g = crate::analysis::DoctorGauges {
            shares: vec![("wait".into(), 0.583), ("interior".into(), 0.417)],
            top_straggler: 1,
        };
        let dg = doctor_gauges_text(&g);
        assert!(dg.contains("yy_critical_path_share{phase=\"wait\"} 0.583"));
        assert!(dg.contains("yy_top_straggler_rank 1\n"));
        assert!(doctor_gauges_text(&Default::default()).contains("yy_top_straggler_rank -1"));
        // Appending doctor gauges keeps every sample line parseable.
        for line in format!("{text}{dg}").lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplitn(2, ' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable sample value in {line:?}");
        }
    }

    #[test]
    fn server_serves_hub_body_over_tcp() {
        let hub = Arc::new(MetricsHub::new());
        hub.publish(prometheus_text(&sample_snapshot(), 5, 0));
        let mut server = MetricsServer::start(Arc::clone(&hub), 0).expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("response");
        assert!(resp.starts_with("HTTP/1.0 200 OK"));
        assert!(resp.contains("yy_kernel_flops_total{kernel=\"rhs\"} 40960"));

        // The body is live: republish and scrape again.
        hub.publish("yy_step 9\n".into());
        let mut stream = TcpStream::connect(addr).expect("connect 2");
        stream.write_all(b"GET / HTTP/1.0\r\n\r\n").expect("request 2");
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("response 2");
        assert!(resp.ends_with("yy_step 9\n"));
        server.stop();
    }
}
