//! The flight-recorder event model and its fixed-width encoding.
//!
//! Events must be recordable from the solver's hot paths, so each one
//! packs into three 64-bit words (plus the timestamp word the ring adds):
//!
//! ```text
//! w0: [ peer:32 | tag:16 | sub:8 | discriminant:8 ]
//! w1: a   (duration, bytes, step, …)
//! w2: b   (sequence number, resume step, …)
//! ```
//!
//! The `sub` byte carries the small enums (solver phase, traffic class,
//! fault kind, health code) as plain integers; the name tables below map
//! them back to strings at export time. Keeping the codes here — rather
//! than referencing `yy-parcomm`'s own enums — lets this crate sit at the
//! bottom of the dependency graph.

/// Solver-phase codes (`sub` byte of [`Event::Phase`]); mirrors
/// `yy_parcomm::SolverPhase` in declaration order.
pub mod phase {
    /// Packing/unpacking halo bands and posting sends.
    pub const PACK: u8 = 0;
    /// Deep-interior stencil work overlapped with in-flight messages.
    pub const INTERIOR: u8 = 1;
    /// Blocked in receives (the unhidden communication cost).
    pub const WAIT: u8 = 2;
    /// Boundary-shell stencil work and wall conditions.
    pub const BOUNDARY: u8 = 3;
    /// Overset interpolation, packing and placement.
    pub const OVERSET: u8 = 4;
    /// Blocked on the async output writer's buffer pool.
    pub const WRITER_WAIT: u8 = 5;

    /// Phase names in code order — iterate this to render one entry per
    /// phase (live gauges, doctor tables).
    pub const NAMES: [&str; 6] =
        ["pack", "interior", "wait", "boundary", "overset", "writer_wait"];

    /// Human-readable phase name (exporters).
    pub fn name(code: u8) -> &'static str {
        match code {
            PACK => "pack",
            INTERIOR => "interior",
            WAIT => "wait",
            BOUNDARY => "boundary",
            OVERSET => "overset",
            WRITER_WAIT => "writer_wait",
            _ => "phase?",
        }
    }

    /// Inverse of [`name`] (trace re-importers); `None` for unknown
    /// names, including the `"phase?"` placeholder.
    pub fn code(name: &str) -> Option<u8> {
        match name {
            "pack" => Some(PACK),
            "interior" => Some(INTERIOR),
            "wait" => Some(WAIT),
            "boundary" => Some(BOUNDARY),
            "overset" => Some(OVERSET),
            "writer_wait" => Some(WRITER_WAIT),
            _ => None,
        }
    }
}

/// Traffic-class codes (`sub` byte of [`Event::Send`]/[`Event::Recv`]);
/// mirrors `yy_parcomm::stats::TrafficClass` in declaration order, with
/// an extra `UNKNOWN` for receives (the wire envelope does not carry the
/// class).
pub mod class {
    /// Nearest-neighbour halo exchange inside a panel.
    pub const HALO: u8 = 0;
    /// Yin↔Yang overset interpolation data.
    pub const OVERSET: u8 = 1;
    /// Reductions and other collective plumbing.
    pub const COLLECTIVE: u8 = 2;
    /// Setup/control messages.
    pub const CONTROL: u8 = 3;
    /// Class not known at the recording site.
    pub const UNKNOWN: u8 = 255;

    /// Human-readable class name (exporters).
    pub fn name(code: u8) -> &'static str {
        match code {
            HALO => "halo",
            OVERSET => "overset",
            COLLECTIVE => "collective",
            CONTROL => "control",
            _ => "msg",
        }
    }
}

/// Injected-fault kinds (`sub` byte of [`Event::FaultInjected`]).
pub mod fault {
    /// First transmission lost; `a` holds the resend count.
    pub const DROP: u8 = 0;
    /// Message held back; `a` holds the injected delay in microseconds.
    pub const DELAY: u8 = 1;
    /// Message delivered twice.
    pub const DUPLICATE: u8 = 2;

    /// Human-readable fault name (exporters).
    pub fn name(code: u8) -> &'static str {
        match code {
            DROP => "drop",
            DELAY => "delay",
            DUPLICATE => "duplicate",
            _ => "fault?",
        }
    }
}

/// Health-violation codes (`sub` byte of [`Event::HealthViolation`]);
/// mirrors `yycore::health::HealthViolation` in declaration order.
pub mod health {
    /// NaN/Inf detected in a state field.
    pub const NON_FINITE: u8 = 0;
    /// Density fell under the floor.
    pub const DENSITY_FLOOR: u8 = 1;
    /// Pressure fell under the floor.
    pub const PRESSURE_FLOOR: u8 = 2;
    /// Time step collapsed.
    pub const DT_COLLAPSE: u8 = 3;

    /// Human-readable health-violation name (exporters).
    pub fn name(code: u8) -> &'static str {
        match code {
            NON_FINITE => "non-finite",
            DENSITY_FLOOR => "density-floor",
            PRESSURE_FLOOR => "pressure-floor",
            DT_COLLAPSE => "dt-collapse",
            _ => "health?",
        }
    }
}

/// Watchdog rule-kind codes (`sub` byte of [`Event::Alert`]); mirrors
/// `crate::watch::RuleKind` (see [`crate::watch::RuleKind::code`]).
pub mod alert {
    /// Latest value above a threshold.
    pub const ABOVE: u8 = 1;
    /// Latest value below a threshold.
    pub const BELOW: u8 = 2;
    /// Rate of change over a window above a limit.
    pub const TREND: u8 = 3;
    /// Signal envelope collapsed (stall).
    pub const FLATLINE: u8 = 4;
    /// Value fell below a ratio of the trailing window max (dt
    /// collapse, the NaN precursor).
    pub const DT_COLLAPSE: u8 = 5;

    /// Human-readable rule-kind name (exporters).
    pub fn name(code: u8) -> &'static str {
        match code {
            ABOVE => "above",
            BELOW => "below",
            TREND => "trend",
            FLATLINE => "flatline",
            DT_COLLAPSE => "dt-collapse",
            _ => "alert?",
        }
    }
}

/// Counter-track ids (`sub` byte of [`Event::CounterSample`]). Ids
/// below [`crate::counters::kernel::COUNT`] are per-kernel achieved
/// MFLOPS tracks; the high ids are run-level gauges.
pub mod counter {
    use crate::counters::kernel;

    /// Mailbox queue depth sampled after the step.
    pub const QUEUE_DEPTH: u8 = 250;
    /// Whole-rank achieved MFLOPS over the sampling window.
    pub const TOTAL_MFLOPS: u8 = 251;

    /// Track name for exporters: `mflops:<kernel>` for kernel ids,
    /// gauge names for the run-level ids.
    pub fn name(id: u8) -> &'static str {
        match id {
            QUEUE_DEPTH => "queue_depth",
            TOTAL_MFLOPS => "mflops_total",
            _ if (id as usize) < kernel::COUNT => match id {
                0 => "mflops:rhs",
                1 => "mflops:rk4_combine",
                2 => "mflops:halo_pack",
                3 => "mflops:halo_unpack",
                4 => "mflops:overset_donate",
                5 => "mflops:overset_fill",
                6 => "mflops:health_scan",
                7 => "mflops:output",
                _ => "mflops:unknown",
            },
            _ => "counter?",
        }
    }
}

const D_PHASE: u8 = 1;
const D_SEND: u8 = 2;
const D_RECV: u8 = 3;
const D_FAULT: u8 = 4;
const D_KILL: u8 = 5;
const D_HEALTH: u8 = 6;
const D_CKPT: u8 = 7;
const D_ROLLBACK: u8 = 8;
const D_STEP: u8 = 9;
const D_COUNTER: u8 = 10;
const D_RETILE: u8 = 11;
const D_DEGRADED: u8 = 12;
const D_CRITICAL_GATE: u8 = 13;
const D_STRAGGLER: u8 = 14;
const D_ALERT: u8 = 15;

/// One flight-recorder event. See the module docs for the wire layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A completed solver-phase span of `dur_ns`; the ring timestamp is
    /// the span's *end* (exporters subtract the duration to get the
    /// start, which is how `PhaseClock::lap` measures).
    Phase {
        /// [`phase`] code.
        phase: u8,
        /// Span length in nanoseconds.
        dur_ns: u64,
    },
    /// A message posted to `peer`'s mailbox.
    Send {
        /// Destination world rank.
        peer: u32,
        /// [`class`] code.
        class: u8,
        /// Payload bytes.
        bytes: u64,
        /// Low 16 bits of the message tag (enough to disambiguate the
        /// solver's tag space; internal collective tags fold down).
        tag16: u16,
        /// Per-stream sequence number.
        seq: u64,
    },
    /// A message received from `peer`.
    Recv {
        /// Source world rank.
        peer: u32,
        /// [`class`] code ([`class::UNKNOWN`] unless the receiver knows).
        class: u8,
        /// Payload bytes.
        bytes: u64,
        /// Low 16 bits of the message tag.
        tag16: u16,
        /// Per-stream sequence number.
        seq: u64,
    },
    /// The fault plan acted on a message this rank sent.
    FaultInjected {
        /// [`fault`] code.
        kind: u8,
        /// Destination world rank of the afflicted message.
        peer: u32,
        /// Kind-specific parameter (resends / delay µs / 0).
        param: u64,
    },
    /// The fault plan killed this rank.
    KillInjected {
        /// Solver step at which the kill fired.
        step: u64,
    },
    /// A health guard tripped.
    HealthViolation {
        /// [`health`] code.
        code: u8,
        /// Solver step of the violation.
        step: u64,
    },
    /// A checkpoint was captured.
    CheckpointSaved {
        /// Step the checkpoint represents.
        step: u64,
    },
    /// The supervisor rolled back to a checkpoint.
    Rollback {
        /// Recovery pass index (1-based: pass 0 is the initial attempt).
        pass: u64,
        /// Step execution resumes from.
        resume_step: u64,
    },
    /// A solver step began.
    StepBegin {
        /// The step number.
        step: u64,
    },
    /// The supervisor re-tiled the run onto a new process layout
    /// (elastic recovery after a persistent rank fault).
    Retile {
        /// θ tile count of the new layout.
        pth: u16,
        /// φ tile count of the new layout.
        pph: u16,
        /// Pass index the retile happened after.
        pass: u64,
        /// Step the shrunk layout resumes from.
        resume_step: u64,
    },
    /// The supervisor entered degraded mode (checkpoint cadence widened
    /// after the first retile).
    Degraded {
        /// Pass index degraded mode began after.
        pass: u64,
        /// The widened checkpoint cadence now in effect.
        checkpoint_every: u64,
    },
    /// Post-run diagnosis mark: one row of the critical-path histogram
    /// (the doctor stamps these into the rings after analysis, so the
    /// exported trace carries its own verdict).
    CriticalGate {
        /// [`phase`] code of the gating phase.
        phase: u8,
        /// Share of analyzed steps this phase gated, in permille.
        share_permille: u64,
        /// Steps this phase gated.
        steps: u64,
    },
    /// Post-run diagnosis mark: one ranked straggler suspect.
    StragglerFlagged {
        /// World rank of the suspect.
        rank: u32,
        /// [`crate::analysis::reason`] code.
        reason: u8,
        /// Severity ratio in permille (1000 = at the peer baseline).
        severity_permille: u64,
    },
    /// A physics-watchdog alert edge: a rule started or stopped firing
    /// (`yy_obs::watch`). Fire/clear edges land as instants in the
    /// Chrome trace so a blow-up is visible on the same timeline as the
    /// rollbacks it causes.
    Alert {
        /// Rule index in the run's rule list.
        rule: u32,
        /// [`alert`] rule-kind code.
        kind: u8,
        /// `true` on a fire edge, `false` on a clear edge.
        firing: bool,
        /// Solver step at the edge.
        step: u64,
    },
    /// A periodic counter sample: one point on a [`counter`] track
    /// (Chrome "C"-phase records, so Perfetto plots the series).
    CounterSample {
        /// [`counter`] track id.
        id: u8,
        /// Sampled value (MFLOPS, queue depth, …) as `f64::to_bits` —
        /// kept as raw bits so the event stays `Eq` and the ring slot
        /// roundtrips exactly. Build with [`Event::counter_sample`],
        /// read with [`Event::counter_value`].
        value_bits: u64,
    },
}

impl Event {
    /// A [`Event::CounterSample`] from an f64 value.
    pub fn counter_sample(id: u8, value: f64) -> Event {
        Event::CounterSample { id, value_bits: value.to_bits() }
    }

    /// The f64 value of a [`Event::CounterSample`]; `None` for other
    /// variants.
    pub fn counter_value(&self) -> Option<f64> {
        match *self {
            Event::CounterSample { value_bits, .. } => Some(f64::from_bits(value_bits)),
            _ => None,
        }
    }

    /// Pack into the three payload words of a ring slot.
    pub fn encode(&self) -> [u64; 3] {
        let head = |d: u8, sub: u8, tag: u16, peer: u32| {
            d as u64 | (sub as u64) << 8 | (tag as u64) << 16 | (peer as u64) << 32
        };
        match *self {
            Event::Phase { phase, dur_ns } => [head(D_PHASE, phase, 0, 0), dur_ns, 0],
            Event::Send { peer, class, bytes, tag16, seq } => {
                [head(D_SEND, class, tag16, peer), bytes, seq]
            }
            Event::Recv { peer, class, bytes, tag16, seq } => {
                [head(D_RECV, class, tag16, peer), bytes, seq]
            }
            Event::FaultInjected { kind, peer, param } => {
                [head(D_FAULT, kind, 0, peer), param, 0]
            }
            Event::KillInjected { step } => [head(D_KILL, 0, 0, 0), step, 0],
            Event::HealthViolation { code, step } => [head(D_HEALTH, code, 0, 0), step, 0],
            Event::CheckpointSaved { step } => [head(D_CKPT, 0, 0, 0), step, 0],
            Event::Rollback { pass, resume_step } => {
                [head(D_ROLLBACK, 0, 0, 0), pass, resume_step]
            }
            Event::StepBegin { step } => [head(D_STEP, 0, 0, 0), step, 0],
            Event::Retile { pth, pph, pass, resume_step } => {
                [head(D_RETILE, 0, pth, pph as u32), pass, resume_step]
            }
            Event::Degraded { pass, checkpoint_every } => {
                [head(D_DEGRADED, 0, 0, 0), pass, checkpoint_every]
            }
            Event::CriticalGate { phase, share_permille, steps } => {
                [head(D_CRITICAL_GATE, phase, 0, 0), share_permille, steps]
            }
            Event::StragglerFlagged { rank, reason, severity_permille } => {
                [head(D_STRAGGLER, reason, 0, rank), severity_permille, 0]
            }
            Event::Alert { rule, kind, firing, step } => {
                [head(D_ALERT, kind, firing as u16, rule), step, 0]
            }
            Event::CounterSample { id, value_bits } => {
                [head(D_COUNTER, id, 0, 0), value_bits, 0]
            }
        }
    }

    /// Decode a ring slot; `None` for an unrecognised discriminant (an
    /// empty or torn slot).
    pub fn decode(words: [u64; 3]) -> Option<Event> {
        let [w0, a, b] = words;
        let sub = (w0 >> 8) as u8;
        let tag16 = (w0 >> 16) as u16;
        let peer = (w0 >> 32) as u32;
        Some(match w0 as u8 {
            D_PHASE => Event::Phase { phase: sub, dur_ns: a },
            D_SEND => Event::Send { peer, class: sub, bytes: a, tag16, seq: b },
            D_RECV => Event::Recv { peer, class: sub, bytes: a, tag16, seq: b },
            D_FAULT => Event::FaultInjected { kind: sub, peer, param: a },
            D_KILL => Event::KillInjected { step: a },
            D_HEALTH => Event::HealthViolation { code: sub, step: a },
            D_CKPT => Event::CheckpointSaved { step: a },
            D_ROLLBACK => Event::Rollback { pass: a, resume_step: b },
            D_STEP => Event::StepBegin { step: a },
            D_RETILE => Event::Retile { pth: tag16, pph: peer as u16, pass: a, resume_step: b },
            D_DEGRADED => Event::Degraded { pass: a, checkpoint_every: b },
            D_CRITICAL_GATE => Event::CriticalGate { phase: sub, share_permille: a, steps: b },
            D_STRAGGLER => Event::StragglerFlagged { rank: peer, reason: sub, severity_permille: a },
            D_ALERT => Event::Alert { rule: peer, kind: sub, firing: tag16 != 0, step: a },
            D_COUNTER => Event::CounterSample { id: sub, value_bits: a },
            _ => return None,
        })
    }
}

/// An event plus the nanosecond timestamp the ring stamped it with
/// (relative to the recorder set's shared origin, so tracks from
/// different ranks align on one timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Nanoseconds since the recorder origin.
    pub ts_ns: u64,
    /// The decoded event.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: Event) {
        assert_eq!(Event::decode(e.encode()), Some(e), "{e:?}");
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Event::Phase { phase: phase::WAIT, dur_ns: u64::MAX });
        roundtrip(Event::Send {
            peer: u32::MAX,
            class: class::HALO,
            bytes: 1 << 50,
            tag16: u16::MAX,
            seq: 123,
        });
        roundtrip(Event::Recv { peer: 7, class: class::UNKNOWN, bytes: 0, tag16: 11, seq: 0 });
        roundtrip(Event::FaultInjected { kind: fault::DELAY, peer: 3, param: 200 });
        roundtrip(Event::KillInjected { step: 4 });
        roundtrip(Event::HealthViolation { code: health::DT_COLLAPSE, step: 9 });
        roundtrip(Event::CheckpointSaved { step: 2 });
        roundtrip(Event::Rollback { pass: 1, resume_step: 4 });
        roundtrip(Event::StepBegin { step: 0 });
        roundtrip(Event::Retile { pth: 1, pph: 2, pass: 3, resume_step: 4 });
        roundtrip(Event::Retile { pth: u16::MAX, pph: u16::MAX, pass: u64::MAX, resume_step: 0 });
        roundtrip(Event::Degraded { pass: 2, checkpoint_every: 8 });
        roundtrip(Event::CriticalGate { phase: phase::WAIT, share_permille: 583, steps: 7 });
        roundtrip(Event::StragglerFlagged { rank: u32::MAX, reason: 1, severity_permille: 14_200 });
        roundtrip(Event::Alert { rule: 0, kind: alert::DT_COLLAPSE, firing: true, step: 12 });
        roundtrip(Event::Alert { rule: u32::MAX, kind: alert::FLATLINE, firing: false, step: 0 });
        roundtrip(Event::counter_sample(counter::TOTAL_MFLOPS, 1234.5));
        roundtrip(Event::counter_sample(0, -0.0));
    }

    #[test]
    fn counter_sample_value_roundtrips_bits() {
        let e = Event::counter_sample(counter::QUEUE_DEPTH, 3.75);
        assert_eq!(e.counter_value(), Some(3.75));
        assert_eq!(Event::StepBegin { step: 1 }.counter_value(), None);
    }

    #[test]
    fn counter_track_names_match_kernel_table() {
        use crate::counters::kernel;
        for id in 0..kernel::COUNT as u8 {
            assert_eq!(
                counter::name(id),
                format!("mflops:{}", kernel::name(id)),
                "counter track {id} out of sync with kernel name table"
            );
        }
        assert_eq!(counter::name(counter::QUEUE_DEPTH), "queue_depth");
        assert_eq!(counter::name(counter::TOTAL_MFLOPS), "mflops_total");
        assert_eq!(counter::name(99), "counter?");
    }

    #[test]
    fn zero_slot_decodes_to_none() {
        assert_eq!(Event::decode([0, 0, 0]), None);
        assert_eq!(Event::decode([0xFF, 1, 2]), None);
    }

    #[test]
    fn name_tables_cover_codes() {
        assert_eq!(phase::name(phase::INTERIOR), "interior");
        assert_eq!(class::name(class::OVERSET), "overset");
        assert_eq!(class::name(class::UNKNOWN), "msg");
        assert_eq!(fault::name(fault::DROP), "drop");
        assert_eq!(health::name(health::NON_FINITE), "non-finite");
        assert_eq!(alert::name(alert::DT_COLLAPSE), "dt-collapse");
        assert_eq!(alert::name(200), "alert?");
        assert_eq!(phase::name(200), "phase?");
    }

    #[test]
    fn phase_codes_invert_names() {
        for p in 0..6u8 {
            assert_eq!(phase::code(phase::name(p)), Some(p));
        }
        assert_eq!(phase::code("phase?"), None);
        assert_eq!(phase::code(""), None);
    }
}
