//! The per-rank flight recorder: a fixed-capacity, lock-free ring of
//! timestamped events.
//!
//! ## Design
//!
//! Each rank is a single OS thread, so the ring has exactly one writer;
//! readers (the supervisor building a post-mortem trace) only look after
//! that thread has been joined. That lets every operation use relaxed
//! atomics — the thread-join provides the happens-before edge — while
//! staying 100 % safe Rust: a slot is four `AtomicU64` words
//! (`[ts, w0, a, b]`, see [`crate::event`]), the head index is a
//! monotonically increasing `AtomicU64`, and a wrapped ring simply
//! overwrites its oldest slots. The *newest* events are therefore never
//! lost — exactly what a post-mortem wants: the last `capacity` things a
//! rank did before dying.
//!
//! ## Cost model
//!
//! `record` behind a disabled flag is one relaxed load and a branch
//! (~1 ns); enabled it is one `Instant::elapsed`, one relaxed
//! `fetch_add` and four relaxed stores. The comm layer holds the
//! recorder as `Option<Arc<FlightRecorder>>`, so a build that never
//! creates one pays only the `None` branch ("compiled out" in the
//! overhead bench's terms).

use crate::event::{Event, TimedEvent};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const WORDS: usize = 4;

/// Default ring capacity (events per rank) when the caller does not
/// choose one: deep enough to hold several steps of a 2-D-decomposed
/// panel's traffic, small enough (~256 KiB/rank) to always leave on.
pub const DEFAULT_CAPACITY: usize = 8192;

/// A single-writer ring buffer of timestamped [`Event`]s.
pub struct FlightRecorder {
    enabled: AtomicBool,
    /// Total events ever recorded; slot index is `head % capacity`.
    head: AtomicU64,
    /// `capacity × WORDS` atomic words.
    slots: Box<[AtomicU64]>,
    origin: Instant,
}

impl FlightRecorder {
    /// An enabled recorder with `capacity` event slots, timestamping
    /// relative to `origin` (share one origin across ranks so their
    /// tracks align).
    pub fn new(capacity: usize, origin: Instant) -> Self {
        assert!(capacity >= 1, "flight recorder needs at least one slot");
        FlightRecorder {
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            slots: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
            origin,
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len() / WORDS
    }

    /// Whether [`FlightRecorder::record`] currently records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. The ring contents survive a disable.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Total events recorded over the recorder's lifetime (may exceed
    /// the capacity; the ring keeps the newest `capacity` of them).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder's origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Record `event` stamped "now". The fast path when disabled is one
    /// relaxed load and a branch.
    #[inline]
    pub fn record(&self, event: Event) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record_at(self.now_ns(), event);
    }

    /// Record `event` with an explicit timestamp (nanoseconds since the
    /// origin); used by span sites that measured their own start time.
    pub fn record_at(&self, ts_ns: u64, event: Event) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.capacity() as u64;
        let base = (n % cap) as usize * WORDS;
        let [w0, a, b] = event.encode();
        self.slots[base].store(ts_ns, Ordering::Relaxed);
        self.slots[base + 1].store(w0, Ordering::Relaxed);
        self.slots[base + 2].store(a, Ordering::Relaxed);
        self.slots[base + 3].store(b, Ordering::Relaxed);
    }

    /// The ring contents, oldest → newest. Meant to be called when the
    /// writing thread is quiescent (joined); a concurrent snapshot is
    /// memory-safe but may contain a torn slot, which decodes to `None`
    /// and is skipped.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.capacity() as u64;
        let len = head.min(cap);
        let first = head - len; // index of the oldest surviving event
        let mut out = Vec::with_capacity(len as usize);
        for n in first..head {
            let base = (n % cap) as usize * WORDS;
            let ts_ns = self.slots[base].load(Ordering::Relaxed);
            let words = [
                self.slots[base + 1].load(Ordering::Relaxed),
                self.slots[base + 2].load(Ordering::Relaxed),
                self.slots[base + 3].load(Ordering::Relaxed),
            ];
            if let Some(event) = Event::decode(words) {
                out.push(TimedEvent { ts_ns, event });
            }
        }
        out
    }
}

/// One flight recorder per rank, sharing a single timestamp origin so
/// the per-rank tracks line up on one timeline. The supervisor creates
/// the set, hands each rank its recorder through the comm layer, and
/// keeps its own `Arc` so the rings outlive a torn-down universe — that
/// is what makes post-mortem traces possible.
pub struct RecorderSet {
    recorders: Vec<Arc<FlightRecorder>>,
}

impl RecorderSet {
    /// `nranks` recorders of `capacity` slots each (0 ⇒
    /// [`DEFAULT_CAPACITY`]), all enabled iff `enabled`.
    pub fn new(nranks: usize, capacity: usize, enabled: bool) -> Self {
        let capacity = if capacity == 0 { DEFAULT_CAPACITY } else { capacity };
        let origin = Instant::now();
        let recorders: Vec<_> =
            (0..nranks).map(|_| Arc::new(FlightRecorder::new(capacity, origin))).collect();
        for r in &recorders {
            r.set_enabled(enabled);
        }
        RecorderSet { recorders }
    }

    /// Number of ranks covered.
    pub fn len(&self) -> usize {
        self.recorders.len()
    }

    /// Whether the set covers zero ranks.
    pub fn is_empty(&self) -> bool {
        self.recorders.is_empty()
    }

    /// Rank `r`'s recorder.
    pub fn rank(&self, r: usize) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorders[r])
    }

    /// Record `event` into every rank's ring (supervisor-side events
    /// such as a rollback, recorded between universe incarnations when
    /// no rank thread is alive).
    pub fn record_all(&self, event: Event) {
        for r in &self.recorders {
            r.record(event);
        }
    }

    /// Snapshot every ring, rank order.
    pub fn snapshots(&self) -> Vec<Vec<TimedEvent>> {
        self.recorders.iter().map(|r| r.snapshot()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: u64) -> Event {
        Event::StepBegin { step }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let r = FlightRecorder::new(8, Instant::now());
        for s in 0..5 {
            r.record(ev(s));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, te) in snap.iter().enumerate() {
            assert_eq!(te.event, ev(i as u64));
        }
        // Timestamps are monotone non-decreasing in record order.
        for w in snap.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn wrap_keeps_the_newest_events() {
        let r = FlightRecorder::new(4, Instant::now());
        for s in 0..11 {
            r.record(ev(s));
        }
        assert_eq!(r.recorded(), 11);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4, "ring holds exactly its capacity");
        let steps: Vec<u64> = snap
            .iter()
            .map(|te| match te.event {
                Event::StepBegin { step } => step,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(steps, vec![7, 8, 9, 10], "the newest events survive a wrap");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::new(8, Instant::now());
        r.set_enabled(false);
        r.record(ev(1));
        r.record_at(123, ev(2));
        assert_eq!(r.recorded(), 0);
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        r.record(ev(3));
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn explicit_timestamps_are_kept() {
        let r = FlightRecorder::new(4, Instant::now());
        r.record_at(42, ev(0));
        let snap = r.snapshot();
        assert_eq!(snap[0].ts_ns, 42);
    }

    #[test]
    fn recorder_set_shares_one_timeline() {
        let set = RecorderSet::new(3, 16, true);
        assert_eq!(set.len(), 3);
        set.rank(0).record(ev(1));
        set.rank(2).record(ev(2));
        set.record_all(Event::Rollback { pass: 1, resume_step: 4 });
        let snaps = set.snapshots();
        assert_eq!(snaps[0].len(), 2);
        assert_eq!(snaps[1].len(), 1);
        assert_eq!(snaps[2].len(), 2);
        assert_eq!(snaps[1][0].event, Event::Rollback { pass: 1, resume_step: 4 });
    }

    #[test]
    fn zero_capacity_requests_get_the_default() {
        let set = RecorderSet::new(1, 0, true);
        assert_eq!(set.rank(0).capacity(), DEFAULT_CAPACITY);
    }
}
