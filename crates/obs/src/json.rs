//! A minimal JSON writer and parser.
//!
//! The workspace is hermetic (no serde), so the exporters assemble JSON
//! with the escape/number helpers here, and the artifact tests re-parse
//! their output with the recursive-descent [`Json::parse`] to prove it
//! is well-formed — the "round-trips through an in-repo parser" check
//! the CI gate runs on every post-mortem trace.
//!
//! The parser accepts exactly RFC 8259 JSON (objects, arrays, strings
//! with escapes, numbers, booleans, null) with two deliberate
//! simplifications: numbers are parsed as `f64` (fine for trace
//! timestamps and report metrics) and `\uXXXX` surrogate pairs are
//! combined but lone surrogates are replaced with U+FFFD.

/// Escape `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number token; non-finite values (which JSON
/// cannot carry) become `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trippable float formatting,
        // which is also valid JSON.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced by [`num`] for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as f64).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// This array's elements as numbers — `None` unless every element
    /// is numeric (`null`, which [`num`] writes for non-finite values,
    /// maps to NaN). The series consumers (`yycore watch`) pull report
    /// channels through this.
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        self.as_arr()?
            .iter()
            .map(|v| match v {
                Json::Null => Some(f64::NAN),
                _ => v.as_f64(),
            })
            .collect()
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .b
            .get(self.i..self.i + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.i))?;
        let s = std::str::from_utf8(s).map_err(|_| "non-ASCII \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))?;
        self.i += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi)
                                && self.b.get(self.i) == Some(&b'\\')
                                && self.b.get(self.i + 1) == Some(&b'u')
                            {
                                self.i += 2;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                c if c < 0x20 => return Err("raw control character in string".to_string()),
                _ => {
                    // Copy one UTF-8 scalar (input is &str, so valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}é日";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_roundtrip_and_nonfinite_is_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        let doc = format!("[{}, {}, {}]", num(0.1), num(-3e9), num(f64::NAN));
        let parsed = Json::parse(&doc).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(0.1));
        assert_eq!(arr[1].as_f64(), Some(-3e9));
        assert_eq!(arr[2], Json::Null);
        let vals = parsed.as_f64_array().unwrap();
        assert_eq!(&vals[..2], &[0.1, -3e9]);
        assert!(vals[2].is_nan(), "null (non-finite) maps to NaN");
        assert_eq!(Json::parse("[1, \"x\"]").unwrap().as_f64_array(), None);
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" {"a":[1,2,{"b":true}],"c":null,"d":{"e":"f"}} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_str(), Some("f"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{", "[1,", "{\"a\":}", "tru", "[1 2]", "\"unterminated", "{\"a\":1}x", "",
            "[01x]", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_combine_surrogates() {
        let v = Json::parse(r#""é 😀 \ud800""#).unwrap();
        assert_eq!(v.as_str(), Some("é 😀 \u{FFFD}"));
    }
}
