//! JSONL structured logging: one JSON object per line, with rank/step
//! context, for machine-consumable run logs (`yycore … log=run.jsonl`).

use crate::json::{escape, num};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// A shared, line-buffered JSONL sink. Cheap enough for driver-level
/// events (passes, recoveries, checkpoints); per-message events belong
/// in the flight recorder, not here.
pub struct JsonlLogger {
    out: Mutex<BufWriter<File>>,
    origin: Instant,
}

impl JsonlLogger {
    /// Create/truncate the log file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlLogger {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            origin: Instant::now(),
        })
    }

    /// Append one record. `rank`/`step` are `None` for supervisor-level
    /// events; `extra` carries event-specific fields (values rendered as
    /// JSON strings).
    pub fn log(
        &self,
        level: &str,
        rank: Option<usize>,
        step: Option<u64>,
        msg: &str,
        extra: &[(&str, String)],
    ) {
        let mut line = format!(
            r#"{{"ts_us":{},"level":"{}""#,
            num(self.origin.elapsed().as_nanos() as f64 / 1000.0),
            escape(level)
        );
        if let Some(r) = rank {
            line.push_str(&format!(r#","rank":{r}"#));
        }
        if let Some(s) = step {
            line.push_str(&format!(r#","step":{s}"#));
        }
        line.push_str(&format!(r#","msg":"{}""#, escape(msg)));
        for (k, v) in extra {
            line.push_str(&format!(r#","{}":"{}""#, escape(k), escape(v)));
        }
        line.push('}');
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        // Logging must never take the run down; swallow I/O errors.
        let _ = out.write_all(line.as_bytes());
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

impl Drop for JsonlLogger {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn lines_are_valid_json_with_context() {
        let dir = std::env::temp_dir().join(format!("yy_obs_log_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        {
            let log = JsonlLogger::create(&path).unwrap();
            log.log("info", Some(1), Some(4), "checkpoint saved", &[("path", "x.ck".into())]);
            log.log("error", None, None, "rank \"died\"\n", &[]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("rank").unwrap().as_f64(), Some(1.0));
        assert_eq!(first.get("step").unwrap().as_f64(), Some(4.0));
        assert_eq!(first.get("msg").unwrap().as_str(), Some("checkpoint saved"));
        assert_eq!(first.get("path").unwrap().as_str(), Some("x.ck"));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("msg").unwrap().as_str(), Some("rank \"died\"\n"));
        assert_eq!(second.get("rank"), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
