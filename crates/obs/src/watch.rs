//! Physics watchdog: declarative alert rules over a [`SeriesStore`].
//!
//! The perf doctor answers "why was this run slow"; the watchdog
//! answers "is this run scientifically healthy" *while it runs*. Rules
//! are declarative — a name, a channel, a condition kind, and hysteresis
//! counts — and are evaluated once per sample row pushed into the store:
//!
//! * `above` / `below` — plain thresholds on the latest value;
//! * `trend_above` — rate of change per sample over a trailing window
//!   exceeds a limit (energy blow-up in progress);
//! * `flatline` — the window's max−min envelope collapsed below an
//!   epsilon (a stalled dynamo: nothing is evolving);
//! * `dt_collapse` — the latest value fell below `ratio ×` the trailing
//!   window's maximum. Applied to the `dt` channel this is the NaN
//!   precursor: the CFL step shrinks as wave speeds blow up, long
//!   before any field actually goes non-finite.
//!
//! Hysteresis makes alerts events, not noise: a rule must violate on
//! `for` consecutive evaluations to fire, then satisfy on `clear`
//! consecutive evaluations to clear, and while firing it cannot fire
//! again — so each blow-up produces exactly one `fired` edge (and at
//! most one `cleared` edge), never a machine-gun of duplicates. The
//! `hysteresis_never_double_fires` property below proves the edges
//! strictly alternate for arbitrary signals and rule parameters.
//!
//! Rules can be parsed from a tiny line format (see [`parse_rules`]):
//!
//! ```text
//! # name: channel kind [param=value ...]
//! energy_blowup: dt dt_collapse window=16 ratio=0.5 for=2 clear=4
//! kinetic_high:  kinetic above threshold=1e6
//! dynamo_stall:  magnetic flatline window=64 eps=1e-12
//! ```

use crate::series::SeriesStore;

/// Condition kinds a [`Rule`] can express.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleKind {
    /// Latest value strictly above the threshold.
    Above {
        /// Firing threshold.
        threshold: f64,
    },
    /// Latest value strictly below the threshold.
    Below {
        /// Firing threshold.
        threshold: f64,
    },
    /// Mean per-sample increase over the trailing `window` samples
    /// strictly above `rate`.
    TrendAbove {
        /// Trailing window length in samples (≥ 2).
        window: usize,
        /// Per-sample rate-of-change limit.
        rate: f64,
    },
    /// `max − min` over the trailing `window` samples strictly below
    /// `eps` (the signal stalled).
    Flatline {
        /// Trailing window length in samples (≥ 2).
        window: usize,
        /// Envelope epsilon.
        eps: f64,
    },
    /// Latest value strictly below `ratio ×` the trailing window's
    /// maximum (dt collapse / blow-up precursor).
    DtCollapse {
        /// Trailing window length in samples (≥ 2).
        window: usize,
        /// Collapse ratio in `(0, 1)`.
        ratio: f64,
    },
}

impl RuleKind {
    /// Fixed-width code for flight-recorder events
    /// ([`crate::event::alert`] is the inverse name table).
    pub fn code(&self) -> u8 {
        match self {
            RuleKind::Above { .. } => crate::event::alert::ABOVE,
            RuleKind::Below { .. } => crate::event::alert::BELOW,
            RuleKind::TrendAbove { .. } => crate::event::alert::TREND,
            RuleKind::Flatline { .. } => crate::event::alert::FLATLINE,
            RuleKind::DtCollapse { .. } => crate::event::alert::DT_COLLAPSE,
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Alert name (lands in reports, gauges, and trace args).
    pub name: String,
    /// Store channel the rule watches.
    pub channel: String,
    /// Condition.
    pub kind: RuleKind,
    /// Consecutive violating evaluations required to fire (≥ 1).
    pub for_samples: u32,
    /// Consecutive satisfied evaluations required to clear (≥ 1).
    pub clear_samples: u32,
}

/// A firing or clearing edge produced by [`Watchdog::eval`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Rule name.
    pub rule: String,
    /// Rule index in the watchdog's rule list.
    pub rule_index: usize,
    /// [`RuleKind::code`] of the rule.
    pub kind_code: u8,
    /// `true` on a fire edge, `false` on a clear edge.
    pub firing: bool,
    /// Solver step at evaluation time.
    pub step: u64,
    /// Simulated time at evaluation time.
    pub time: f64,
    /// The channel's latest value when the edge happened.
    pub value: f64,
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    firing: bool,
    violate_streak: u32,
    satisfy_streak: u32,
    fired_count: u32,
}

/// Stateful rule evaluator over a [`SeriesStore`].
#[derive(Debug, Clone)]
pub struct Watchdog {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
}

impl Watchdog {
    /// A watchdog over the given rules.
    pub fn new(rules: Vec<Rule>) -> Watchdog {
        for r in &rules {
            assert!(r.for_samples >= 1 && r.clear_samples >= 1, "hysteresis counts must be >= 1");
        }
        let states = vec![RuleState::default(); rules.len()];
        Watchdog { rules, states }
    }

    /// The default geodynamo ruleset: dt collapse as the blow-up
    /// precursor, plus a stalled-dynamo flatline on magnetic energy.
    pub fn default_rules() -> Vec<Rule> {
        vec![
            Rule {
                name: "energy_blowup".to_string(),
                channel: "dt".to_string(),
                kind: RuleKind::DtCollapse { window: 16, ratio: 0.5 },
                for_samples: 2,
                clear_samples: 4,
            },
            Rule {
                name: "dynamo_stall".to_string(),
                channel: "magnetic".to_string(),
                kind: RuleKind::Flatline { window: 64, eps: 1e-14 },
                for_samples: 4,
                clear_samples: 4,
            },
        ]
    }

    /// The rules, in index order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Whether rule `i` is currently firing.
    pub fn is_firing(&self, i: usize) -> bool {
        self.states.get(i).map(|s| s.firing).unwrap_or(false)
    }

    /// How many times rule `i` has fired so far.
    pub fn fired_count(&self, i: usize) -> u32 {
        self.states.get(i).map(|s| s.fired_count).unwrap_or(0)
    }

    /// Does the rule's condition hold on the store right now? `None`
    /// when the channel is missing or the window is not yet full (a
    /// not-yet-warm rule neither violates nor satisfies).
    fn violated(rule: &Rule, store: &SeriesStore) -> Option<bool> {
        let c = store.channel(&rule.channel)?;
        let latest = c.latest()?;
        match rule.kind {
            RuleKind::Above { threshold } => Some(latest > threshold),
            RuleKind::Below { threshold } => Some(latest < threshold),
            RuleKind::TrendAbove { window, rate } => {
                let w = c.tail_values(window);
                if w.len() < window || window < 2 {
                    return None;
                }
                let slope = (w[w.len() - 1] - w[0]) / (w.len() - 1) as f64;
                Some(slope > rate)
            }
            RuleKind::Flatline { window, eps } => {
                let w = c.tail_values(window);
                if w.len() < window || window < 2 {
                    return None;
                }
                let min = w.iter().copied().fold(f64::INFINITY, f64::min);
                let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Some(max - min < eps)
            }
            RuleKind::DtCollapse { window, ratio } => {
                let w = c.tail_values(window);
                if w.len() < 2 {
                    return None;
                }
                let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Some(latest < ratio * max)
            }
        }
    }

    /// Evaluate every rule against the store's current contents
    /// (call once per pushed row). Returns the fire/clear edges this
    /// evaluation produced.
    pub fn eval(&mut self, store: &SeriesStore, step: u64, time: f64) -> Vec<AlertEvent> {
        let mut edges = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let st = &mut self.states[i];
            let Some(violated) = Self::violated(rule, store) else {
                continue;
            };
            if violated {
                st.violate_streak += 1;
                st.satisfy_streak = 0;
            } else {
                st.satisfy_streak += 1;
                st.violate_streak = 0;
            }
            let value = store.channel(&rule.channel).and_then(|c| c.latest()).unwrap_or(f64::NAN);
            if !st.firing && st.violate_streak >= rule.for_samples {
                st.firing = true;
                st.fired_count += 1;
                edges.push(AlertEvent {
                    rule: rule.name.clone(),
                    rule_index: i,
                    kind_code: rule.kind.code(),
                    firing: true,
                    step,
                    time,
                    value,
                });
            } else if st.firing && st.satisfy_streak >= rule.clear_samples {
                st.firing = false;
                edges.push(AlertEvent {
                    rule: rule.name.clone(),
                    rule_index: i,
                    kind_code: rule.kind.code(),
                    firing: false,
                    step,
                    time,
                    value,
                });
            }
        }
        edges
    }
}

fn parse_f64(params: &[(String, String)], key: &str) -> Option<f64> {
    params.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok())
}

fn parse_usize(params: &[(String, String)], key: &str) -> Option<usize> {
    params.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok())
}

/// Parse the line-oriented rule format (`name: channel kind k=v ...`;
/// `#` comments and blank lines ignored). See the module docs for
/// examples and the per-kind parameters.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("rules line {}: {msg}: {raw:?}", lineno + 1);
        let (name, rest) = line.split_once(':').ok_or_else(|| err("missing `name:`"))?;
        let mut toks = rest.split_whitespace();
        let channel = toks.next().ok_or_else(|| err("missing channel"))?;
        let kind_tok = toks.next().ok_or_else(|| err("missing kind"))?;
        let params: Vec<(String, String)> = toks
            .map(|t| {
                t.split_once('=')
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .ok_or_else(|| err(&format!("bad param {t:?} (want key=value)")))
            })
            .collect::<Result<_, _>>()?;
        let kind = match kind_tok {
            "above" => RuleKind::Above {
                threshold: parse_f64(&params, "threshold").ok_or_else(|| err("above needs threshold="))?,
            },
            "below" => RuleKind::Below {
                threshold: parse_f64(&params, "threshold").ok_or_else(|| err("below needs threshold="))?,
            },
            "trend_above" => RuleKind::TrendAbove {
                window: parse_usize(&params, "window").unwrap_or(16).max(2),
                rate: parse_f64(&params, "rate").ok_or_else(|| err("trend_above needs rate="))?,
            },
            "flatline" => RuleKind::Flatline {
                window: parse_usize(&params, "window").unwrap_or(16).max(2),
                eps: parse_f64(&params, "eps").ok_or_else(|| err("flatline needs eps="))?,
            },
            "dt_collapse" => RuleKind::DtCollapse {
                window: parse_usize(&params, "window").unwrap_or(16).max(2),
                ratio: parse_f64(&params, "ratio").unwrap_or(0.5),
            },
            other => return Err(err(&format!("unknown kind {other:?}"))),
        };
        rules.push(Rule {
            name: name.trim().to_string(),
            channel: channel.to_string(),
            kind,
            for_samples: parse_usize(&params, "for").unwrap_or(1).max(1) as u32,
            clear_samples: parse_usize(&params, "clear").unwrap_or(1).max(1) as u32,
        });
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{SeriesSpec, SeriesStore};
    use yy_testkit::{check, tk_assert};

    fn store(names: &[&str]) -> SeriesStore {
        SeriesStore::new(names, SeriesSpec { raw_capacity: 64, tier_widths: vec![4], tier_capacity: 8 })
    }

    #[test]
    fn threshold_rule_fires_after_for_and_clears_after_clear() {
        let mut s = store(&["kinetic"]);
        let mut w = Watchdog::new(vec![Rule {
            name: "hot".into(),
            channel: "kinetic".into(),
            kind: RuleKind::Above { threshold: 10.0 },
            for_samples: 2,
            clear_samples: 3,
        }]);
        let mut edges = Vec::new();
        for &v in &[1.0, 20.0, 20.0, 20.0, 1.0, 1.0, 1.0, 1.0] {
            s.push_row(&[v]);
            edges.extend(w.eval(&s, 0, 0.0));
        }
        assert_eq!(edges.len(), 2);
        assert!(edges[0].firing && edges[0].value == 20.0);
        assert!(!edges[1].firing);
        assert_eq!(w.fired_count(0), 1);
        assert!(!w.is_firing(0));
    }

    #[test]
    fn dt_collapse_rule_is_the_nan_precursor() {
        let mut s = store(&["dt"]);
        let mut w = Watchdog::new(vec![Rule {
            name: "energy_blowup".into(),
            channel: "dt".into(),
            kind: RuleKind::DtCollapse { window: 8, ratio: 0.5 },
            for_samples: 2,
            clear_samples: 4,
        }]);
        let mut fired = false;
        // Healthy plateau, then the CFL step starts halving each sample.
        let mut dt = 1e-3;
        for i in 0..12 {
            if i >= 6 {
                dt *= 0.5;
            }
            s.push_row(&[dt]);
            for e in w.eval(&s, i, i as f64) {
                assert!(e.firing, "collapse only deepens; no clear expected");
                assert_eq!(e.rule, "energy_blowup");
                fired = true;
            }
        }
        assert!(fired, "halving dt must trip the collapse rule");
        assert!(w.is_firing(0));
    }

    #[test]
    fn flatline_and_trend_need_a_full_window() {
        let mut s = store(&["m"]);
        let mut w = Watchdog::new(vec![
            Rule {
                name: "stall".into(),
                channel: "m".into(),
                kind: RuleKind::Flatline { window: 4, eps: 1e-9 },
                for_samples: 1,
                clear_samples: 1,
            },
            Rule {
                name: "runaway".into(),
                channel: "m".into(),
                kind: RuleKind::TrendAbove { window: 4, rate: 0.5 },
                for_samples: 1,
                clear_samples: 1,
            },
        ]);
        // Three flat samples: window not full, nothing may fire.
        for i in 0..3 {
            s.push_row(&[5.0]);
            assert!(w.eval(&s, i, 0.0).is_empty());
        }
        // Fourth flat sample completes the window: stall fires.
        s.push_row(&[5.0]);
        let edges = w.eval(&s, 3, 0.0);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].rule, "stall");
        // A steep ramp fires the trend rule and clears the stall.
        for (i, v) in [10.0, 20.0, 30.0, 40.0].into_iter().enumerate() {
            s.push_row(&[v]);
            for e in w.eval(&s, 4 + i as u64, 0.0) {
                match e.rule.as_str() {
                    "stall" => assert!(!e.firing),
                    "runaway" => assert!(e.firing),
                    other => panic!("unexpected rule {other}"),
                }
            }
        }
        assert!(w.is_firing(1));
        assert!(!w.is_firing(0));
    }

    #[test]
    fn rules_parse_from_the_line_format() {
        let text = "\
# geodynamo defaults
energy_blowup: dt dt_collapse window=16 ratio=0.5 for=2 clear=4
kinetic_high:  kinetic above threshold=1e6
dynamo_stall:  magnetic flatline window=64 eps=1e-12  # trailing comment
";
        let rules = parse_rules(text).expect("parses");
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].name, "energy_blowup");
        assert_eq!(rules[0].kind, RuleKind::DtCollapse { window: 16, ratio: 0.5 });
        assert_eq!(rules[0].for_samples, 2);
        assert_eq!(rules[0].clear_samples, 4);
        assert_eq!(rules[1].kind, RuleKind::Above { threshold: 1e6 });
        assert_eq!(rules[2].channel, "magnetic");
        assert!(parse_rules("bad line with no colon").is_err());
        assert!(parse_rules("x: chan unknown_kind").is_err());
        assert!(parse_rules("x: chan above").is_err(), "above without threshold=");
    }

    #[test]
    fn default_rules_include_the_blowup_precursor() {
        let rules = Watchdog::default_rules();
        assert!(rules.iter().any(|r| r.name == "energy_blowup" && r.channel == "dt"));
        let codes: Vec<u8> = rules.iter().map(|r| r.kind.code()).collect();
        assert!(codes.contains(&crate::event::alert::DT_COLLAPSE));
    }

    /// Edge discipline under arbitrary signals and hysteresis counts:
    /// fire and clear edges strictly alternate (never two fires without
    /// a clear between them), no matter how the signal crosses the
    /// threshold or where downsample bucket boundaries fall.
    #[test]
    fn hysteresis_never_double_fires() {
        check(
            "watch_hysteresis_alternates",
            |g| {
                let for_s = g.range_usize(1, 5) as u32;
                let clear_s = g.range_usize(1, 5) as u32;
                let threshold = g.range_f64(-1.0, 1.0);
                let signal = g.vec_f64(-2.0, 2.0, 1, 300);
                // Small raw capacity + tier width 4: edges land on and
                // across downsample bucket boundaries constantly.
                let raw_cap = g.range_usize(1, 12);
                (for_s, clear_s, threshold, signal, raw_cap)
            },
            |(for_s, clear_s, threshold, signal, raw_cap)| {
                let spec = SeriesSpec {
                    raw_capacity: *raw_cap,
                    tier_widths: vec![4],
                    tier_capacity: 4,
                };
                let mut s = SeriesStore::new(&["x"], spec);
                let mut w = Watchdog::new(vec![Rule {
                    name: "r".into(),
                    channel: "x".into(),
                    kind: RuleKind::Above { threshold: *threshold },
                    for_samples: *for_s,
                    clear_samples: *clear_s,
                }]);
                let mut last_edge: Option<bool> = None;
                let mut fires = 0u32;
                for (i, &v) in signal.iter().enumerate() {
                    s.push_row(&[v]);
                    for e in w.eval(&s, i as u64, 0.0) {
                        tk_assert!(
                            last_edge != Some(e.firing),
                            "edge {} repeated at sample {i}",
                            e.firing
                        );
                        last_edge = Some(e.firing);
                        if e.firing {
                            fires += 1;
                        }
                    }
                }
                tk_assert!(w.fired_count(0) == fires, "fired_count matches fire edges");
                // A firing watchdog saw its last edge as a fire.
                if w.is_firing(0) {
                    tk_assert!(last_edge == Some(true), "firing implies last edge was a fire");
                }
                Ok(())
            },
        );
    }
}
