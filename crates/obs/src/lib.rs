//! Zero-dependency observability for the geodynamo workspace.
//!
//! The paper's entire evaluation is an observability artifact: List 1 of
//! the SC'04 paper is the `MPIPROGINF` per-process counter report from
//! which the 15.2 TFlops headline is read. This crate grows the same
//! discipline for the in-process runtime, in three layers:
//!
//! * **Flight recorder** ([`FlightRecorder`]) — a per-rank fixed-capacity
//!   ring buffer of timestamped [`Event`]s (solver phase spans, message
//!   send/recv, fault injections, health violations,
//!   checkpoint/rollback). Recording is lock-free (single-writer ring of
//!   relaxed atomics) behind an enabled-flag fast path, so a disabled
//!   recorder costs one atomic load per event site and a missing
//!   recorder (`Option::None` in the comm layer) costs one branch.
//! * **Metrics** ([`Histogram`], [`Registry`]) — log₂-bucketed latency
//!   histograms with exact associative/commutative merge (so per-rank
//!   distributions can be allreduced), plus a small named
//!   counter/gauge/histogram registry for driver-level metrics.
//! * **Exporters** ([`chrome`], [`logger`], [`json`]) — Chrome
//!   trace-event JSON (one track per rank, spans + message flow arrows,
//!   loadable in Perfetto / `chrome://tracing`), JSONL structured logs,
//!   and the minimal JSON writer/parser the artifact tests round-trip
//!   through.
//!
//! Everything here is plain `std`: no registry dependencies, in keeping
//! with the workspace's hermetic-build rule (DESIGN.md §3a).

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod counters;
pub mod event;
pub mod hist;
pub mod json;
pub mod logger;
pub mod metrics;
pub mod registry;
pub mod ring;
pub mod series;
pub mod watch;

pub use analysis::{
    analyze, compare, streams_from_chrome, Analysis, AnalysisInput, DoctorGauges, LedgerEntry,
    Verdict,
};
pub use chrome::{chrome_trace_json, validate_chrome_trace, RankTrace, TraceCheck};
pub use counters::{kernel, CounterSet, CounterSnapshot, KernelSnapshot, KernelTally};
pub use event::{Event, TimedEvent};
pub use hist::{Histogram, HistogramSnapshot};
pub use json::Json;
pub use logger::JsonlLogger;
pub use metrics::{
    doctor_gauges_text, prometheus_text, prometheus_text_with_phases, science_gauges_text,
    MetricsHub, MetricsServer, ScienceGauges,
};
pub use registry::{MetricsSnapshot, Registry};
pub use ring::{FlightRecorder, RecorderSet};
pub use series::{Bucket, Channel, SeriesSpec, SeriesStore, Tier};
pub use watch::{parse_rules, AlertEvent, Rule, RuleKind, Watchdog};
