//! The perf doctor: offline/inline diagnosis over flight-recorder
//! contents — the layer that *interprets* what the rest of `yy-obs`
//! collects.
//!
//! Three engines, all pure functions over per-rank event streams (so
//! they run post-hoc on [`crate::RecorderSet`] snapshots, on a re-parsed
//! Chrome trace, or on synthetic streams in tests — and can never
//! perturb the solver):
//!
//! 1. **Per-step critical path** ([`analyze`]) — segment each rank's
//!    stream by `StepBegin`, find per step the rank whose phase work
//!    finished *last* (the gating rank) and the phase that dominated its
//!    step (the gating phase), and aggregate into a gating-phase
//!    histogram plus a per-rank "times on critical path" table.
//! 2. **Straggler & imbalance attribution** — per-rank compute walls vs
//!    the mean (read against the partitioner's predicted imbalance),
//!    send→recv lag asymmetry (a sender whose messages consistently
//!    arrive late relative to its peers), and writer-backpressure skew,
//!    folded into a ranked suspect list with a stated [`reason`].
//! 3. **Cross-run regression ledger** ([`LedgerEntry`], [`compare`]) —
//!    append-only JSONL of compact run summaries with noise-aware
//!    baseline verdicts (`ok | regressed | improved`).
//!
//! Analysis degrades gracefully under ring wraparound: the fixed-capacity
//! recorder keeps only the newest events, so [`Analysis::coverage`]
//! reports the retained fraction and the step walk simply analyzes the
//! steps every rank still has — never panicking on a truncated stream.

use crate::event::{phase, Event, TimedEvent};
use crate::json::{escape, num, Json};
use std::collections::{BTreeMap, HashMap};

/// Straggler reason codes, with the same name-table discipline as the
/// [`crate::event`] sub-enums.
pub mod reason {
    /// The rank's stencil/compute wall is far above the mean (bad tile,
    /// slow node, or a mispredicted weighted decomposition).
    pub const SLOW_COMPUTE: u8 = 0;
    /// The rank's *sent* messages arrive late at their receivers (its
    /// peers stall in `wait` through no fault of their own).
    pub const LATE_SENDER: u8 = 1;
    /// The rank spends disproportionate time blocked on the async
    /// output writer's buffer pool.
    pub const IO_BACKPRESSURE: u8 = 2;

    /// Human-readable reason name.
    pub fn name(code: u8) -> &'static str {
        match code {
            SLOW_COMPUTE => "slow compute",
            LATE_SENDER => "late sender",
            IO_BACKPRESSURE => "io backpressure",
            _ => "reason?",
        }
    }

    /// Inverse of [`name`] (JSON readers).
    pub fn code(name: &str) -> Option<u8> {
        match name {
            "slow compute" => Some(SLOW_COMPUTE),
            "late sender" => Some(LATE_SENDER),
            "io backpressure" => Some(IO_BACKPRESSURE),
            _ => None,
        }
    }
}

/// Number of solver phases the analyzer attributes (mirrors
/// [`phase`]'s code space).
const NPHASE: usize = 6;

/// Everything [`analyze`] consumes.
pub struct AnalysisInput<'a> {
    /// Per-rank event streams, oldest → newest (world-rank indexed, as
    /// [`crate::RecorderSet::snapshots`] returns them).
    pub streams: &'a [Vec<TimedEvent>],
    /// Per-rank `(events recorded ever, ring capacity)` for the
    /// wraparound coverage fraction. Empty ⇒ streams are complete.
    pub retained: Vec<(u64, usize)>,
    /// The partitioner's predicted compute imbalance (1.0 when unknown);
    /// quoted in slow-compute details so a "straggler" that the layout
    /// *predicted* reads differently from an unexpected one.
    pub predicted_imbalance: f64,
}

/// One row of the gating-phase histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseGate {
    /// Phase name (from [`phase::name`]).
    pub phase: String,
    /// Steps this phase gated.
    pub steps: u64,
}

/// One ranked straggler suspect.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// World rank of the suspect.
    pub rank: u32,
    /// [`reason`] code.
    pub reason: u8,
    /// Dimensionless severity (ratio vs the peer median/mean; higher is
    /// worse). Comparable across reasons for ranking purposes.
    pub severity: f64,
    /// Human-readable evidence line.
    pub detail: String,
}

/// A recovery-plane event that sat on the run's critical path (a kill,
/// rollback, retile or degraded-mode entry — each one stalls every
/// rank).
#[derive(Debug, Clone, PartialEq)]
pub struct Disruption {
    /// World rank the event is attributed to (−1 for collective events
    /// like retiles, which every rank records).
    pub rank: i64,
    /// Solver step (kills) or resume step (rollback/retile).
    pub step: u64,
    /// Kind: `kill`, `rollback`, `retile <pth>x<pph>`, `degraded`.
    pub kind: String,
}

/// The diagnosis: what [`analyze`] found, what `yycore doctor` prints,
/// and what lands in the report's v5 `analysis` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    /// Steps with a complete phase segment on every rank.
    pub steps_analyzed: u64,
    /// Fraction of recorded events still in the rings (min over ranks);
    /// < 1.0 means wraparound evicted history and the step walk covers
    /// only what survived. 0.0 on an empty/absent analysis.
    pub coverage: f64,
    /// Gating-phase histogram, most-gating first.
    pub gating: Vec<PhaseGate>,
    /// `rank_path[r]` = steps rank `r` gated (world-rank indexed).
    pub rank_path: Vec<u64>,
    /// Ranked straggler suspects, worst first.
    pub stragglers: Vec<Straggler>,
    /// Recovery events on the critical path, in stream order.
    pub disruptions: Vec<Disruption>,
    /// One-line human summary.
    pub verdict: String,
}

/// What the live metrics endpoint exports from an [`Analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorGauges {
    /// `(phase name, share of analyzed steps gated)` pairs.
    pub shares: Vec<(String, f64)>,
    /// World rank of the top straggler, −1 when none.
    pub top_straggler: i64,
}

impl Default for DoctorGauges {
    fn default() -> Self {
        DoctorGauges { shares: Vec::new(), top_straggler: -1 }
    }
}

impl Analysis {
    /// The gauges the Prometheus endpoint exports
    /// ([`crate::metrics::doctor_gauges_text`]).
    pub fn gauges(&self) -> DoctorGauges {
        let total: u64 = self.gating.iter().map(|g| g.steps).sum();
        DoctorGauges {
            shares: self
                .gating
                .iter()
                .map(|g| (g.phase.clone(), if total == 0 { 0.0 } else { g.steps as f64 / total as f64 }))
                .collect(),
            top_straggler: self.stragglers.first().map_or(-1, |s| s.rank as i64),
        }
    }

    /// Serialize as the report's `analysis` section object.
    pub fn to_json(&self) -> String {
        let gating: Vec<String> = self
            .gating
            .iter()
            .map(|g| format!(r#"{{"phase":"{}","steps":{}}}"#, escape(&g.phase), g.steps))
            .collect();
        let ranks: Vec<String> = self.rank_path.iter().map(|n| n.to_string()).collect();
        let stragglers: Vec<String> = self
            .stragglers
            .iter()
            .map(|s| {
                format!(
                    r#"{{"rank":{},"reason":"{}","severity":{},"detail":"{}"}}"#,
                    s.rank,
                    reason::name(s.reason),
                    num(s.severity),
                    escape(&s.detail)
                )
            })
            .collect();
        let disruptions: Vec<String> = self
            .disruptions
            .iter()
            .map(|d| {
                format!(r#"{{"rank":{},"step":{},"kind":"{}"}}"#, d.rank, d.step, escape(&d.kind))
            })
            .collect();
        format!(
            r#"{{"steps_analyzed":{},"coverage":{},"gating":[{}],"rank_path":[{}],"stragglers":[{}],"disruptions":[{}],"verdict":"{}"}}"#,
            self.steps_analyzed,
            num(self.coverage),
            gating.join(","),
            ranks.join(","),
            stragglers.join(","),
            disruptions.join(","),
            escape(&self.verdict),
        )
    }

    /// Parse the `analysis` section object back (doctor's offline
    /// report mode; also the roundtrip test). Unknown reasons decode to
    /// 255 rather than failing, keeping the reader forward-tolerant.
    pub fn from_json(j: &Json) -> Result<Analysis, String> {
        let u = |k: &str| -> Result<u64, String> {
            j.get(k).and_then(|v| v.as_f64()).map(|f| f as u64).ok_or(format!("analysis: missing {k}"))
        };
        let mut a = Analysis {
            steps_analyzed: u("steps_analyzed")?,
            coverage: j.get("coverage").and_then(|v| v.as_f64()).unwrap_or(0.0),
            verdict: j.get("verdict").and_then(|v| v.as_str()).unwrap_or("").to_string(),
            ..Analysis::default()
        };
        if let Some(arr) = j.get("gating").and_then(|v| v.as_arr()) {
            for g in arr {
                a.gating.push(PhaseGate {
                    phase: g.get("phase").and_then(|v| v.as_str()).unwrap_or("phase?").to_string(),
                    steps: g.get("steps").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
                });
            }
        }
        if let Some(arr) = j.get("rank_path").and_then(|v| v.as_arr()) {
            for r in arr {
                a.rank_path.push(r.as_f64().unwrap_or(0.0) as u64);
            }
        }
        if let Some(arr) = j.get("stragglers").and_then(|v| v.as_arr()) {
            for s in arr {
                a.stragglers.push(Straggler {
                    rank: s.get("rank").and_then(|v| v.as_f64()).unwrap_or(0.0) as u32,
                    reason: s
                        .get("reason")
                        .and_then(|v| v.as_str())
                        .and_then(reason::code)
                        .unwrap_or(255),
                    severity: s.get("severity").and_then(|v| v.as_f64()).unwrap_or(0.0),
                    detail: s.get("detail").and_then(|v| v.as_str()).unwrap_or("").to_string(),
                });
            }
        }
        if let Some(arr) = j.get("disruptions").and_then(|v| v.as_arr()) {
            for d in arr {
                a.disruptions.push(Disruption {
                    rank: d.get("rank").and_then(|v| v.as_f64()).unwrap_or(-1.0) as i64,
                    step: d.get("step").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
                    kind: d.get("kind").and_then(|v| v.as_str()).unwrap_or("").to_string(),
                });
            }
        }
        Ok(a)
    }
}

/// One rank's phase work inside one step.
#[derive(Default, Clone)]
struct Segment {
    phase_ns: [u64; NPHASE],
    /// Timestamp of the last phase span recorded in this segment (phase
    /// spans are end-stamped, so this is when the rank's step work
    /// finished).
    end_ts: u64,
    /// Receives matched inside the segment: `(src, tag16, seq, ts)`.
    recvs: Vec<(u32, u16, u64, u64)>,
}

/// Run the critical-path + straggler diagnosis over per-rank streams.
///
/// Never panics: streams truncated by ring wraparound, streams with no
/// `StepBegin` markers, and empty inputs all produce a (possibly empty)
/// [`Analysis`] whose `coverage`/`steps_analyzed` say how much evidence
/// survived.
pub fn analyze(input: &AnalysisInput) -> Analysis {
    let nranks = input.streams.len();
    if nranks == 0 {
        return Analysis::default();
    }
    // Pass 1: per-rank step segments, phase totals, the global send map,
    // and the recovery-plane disruptions.
    let mut segs: Vec<BTreeMap<u64, Segment>> = vec![BTreeMap::new(); nranks];
    let mut totals = vec![[0u64; NPHASE]; nranks];
    // (src, dst, tag16, seq) -> send timestamps, oldest first. Sequence
    // numbers restart on every supervised pass, so a key can legally
    // repeat; receive matching picks the newest send at or before the
    // receive.
    let mut sends: HashMap<(u32, u32, u16, u64), Vec<u64>> = HashMap::new();
    let mut kills: Vec<(usize, u64, u64)> = Vec::new(); // (rank, step, ts)
    let mut collective: BTreeMap<(u64, u64, String), u64> = BTreeMap::new(); // dedup record_all
    for (r, stream) in input.streams.iter().enumerate() {
        let mut cur: Option<u64> = None;
        for te in stream {
            match te.event {
                Event::StepBegin { step } => {
                    cur = Some(step);
                    // A replayed step (post-rollback) overwrites the
                    // abandoned pass's segment: newest evidence wins.
                    segs[r].insert(step, Segment::default());
                }
                Event::Phase { phase: p, dur_ns } if (p as usize) < NPHASE => {
                    totals[r][p as usize] += dur_ns;
                    if let Some(s) = cur {
                        if let Some(seg) = segs[r].get_mut(&s) {
                            seg.phase_ns[p as usize] += dur_ns;
                            seg.end_ts = seg.end_ts.max(te.ts_ns);
                        }
                    }
                }
                Event::Send { peer, tag16, seq, .. } => {
                    sends.entry((r as u32, peer, tag16, seq)).or_default().push(te.ts_ns);
                }
                Event::Recv { peer, tag16, seq, .. } => {
                    if let Some(s) = cur {
                        if let Some(seg) = segs[r].get_mut(&s) {
                            seg.recvs.push((peer, tag16, seq, te.ts_ns));
                        }
                    }
                }
                Event::KillInjected { step } => kills.push((r, step, te.ts_ns)),
                Event::Rollback { pass, resume_step } => {
                    collective.insert((pass, resume_step, "rollback".into()), resume_step);
                }
                Event::Retile { pth, pph, pass, resume_step } => {
                    collective.insert((pass, resume_step, format!("retile {pth}x{pph}")), resume_step);
                }
                Event::Degraded { pass, checkpoint_every } => {
                    collective.insert((pass, checkpoint_every, "degraded".into()), 0);
                }
                _ => {}
            }
        }
    }

    // Send→recv lag: how long after the send each message was matched.
    // Under an injected per-sender delay (or a genuinely slow sender)
    // this is the stall its receivers cannot hide.
    let lag_of = |src: u32, dst: u32, tag16: u16, seq: u64, recv_ts: u64| -> Option<u64> {
        let ts_list = sends.get(&(src, dst, tag16, seq))?;
        let sent = ts_list.iter().rev().find(|&&t| t <= recv_ts).or(ts_list.first())?;
        Some(recv_ts.saturating_sub(*sent))
    };
    let mut lag_sum = vec![0u64; nranks];
    let mut lag_n = vec![0u64; nranks];

    // Pass 2: the per-step critical path over steps every rank covered.
    let common: Vec<u64> = match segs.first() {
        Some(first) => first
            .iter()
            .filter(|(_, s)| s.end_ts > 0)
            .map(|(&step, _)| step)
            .filter(|step| {
                segs.iter().all(|m| m.get(step).map(|s| s.end_ts > 0).unwrap_or(false))
            })
            .collect(),
        None => Vec::new(),
    };
    let mut gating_steps = [0u64; NPHASE];
    let mut rank_path = vec![0u64; nranks];
    let mut wait_blame = vec![0u64; nranks]; // steps a rank's late send gated a peer's wait
    for &step in &common {
        let gater = (0..nranks)
            .max_by_key(|&r| segs[r][&step].end_ts)
            .expect("nranks > 0");
        let seg = &segs[gater][&step];
        let gphase = (0..NPHASE).max_by_key(|&p| seg.phase_ns[p]).expect("NPHASE > 0");
        rank_path[gater] += 1;
        gating_steps[gphase] += 1;
        if gphase == phase::WAIT as usize {
            // The gating rank stalled in receives: blame the sender of
            // its latest-arriving message relative to the send time.
            let late = seg
                .recvs
                .iter()
                .filter_map(|&(src, tag, seq, ts)| {
                    lag_of(src, gater as u32, tag, seq, ts).map(|lag| (src, lag))
                })
                .max_by_key(|&(_, lag)| lag);
            if let Some((src, _)) = late {
                if (src as usize) < nranks {
                    wait_blame[src as usize] += 1;
                }
            }
        }
    }
    // Lag statistics over every matched receive (not only gating steps),
    // so the late-sender signal survives even when waits were hidden.
    for (r, m) in segs.iter().enumerate() {
        for seg in m.values() {
            for &(src, tag, seq, ts) in &seg.recvs {
                if let Some(lag) = lag_of(src, r as u32, tag, seq, ts) {
                    if (src as usize) < nranks {
                        lag_sum[src as usize] += lag;
                        lag_n[src as usize] += 1;
                    }
                }
            }
        }
    }

    // Straggler attribution: strongest signal per rank, ranked.
    let compute: Vec<u64> = (0..nranks)
        .map(|r| {
            totals[r][phase::PACK as usize]
                + totals[r][phase::INTERIOR as usize]
                + totals[r][phase::BOUNDARY as usize]
                + totals[r][phase::OVERSET as usize]
        })
        .collect();
    let mean_compute = (compute.iter().sum::<u64>() as f64 / nranks as f64).max(1.0);
    let lag_mean: Vec<f64> =
        (0..nranks).map(|r| if lag_n[r] == 0 { 0.0 } else { lag_sum[r] as f64 / lag_n[r] as f64 }).collect();
    let mut sorted_lags = lag_mean.clone();
    sorted_lags.sort_by(|a, b| a.total_cmp(b));
    // Lower median, so a single outlier among few ranks cannot drag the
    // baseline up to itself.
    let lag_median = sorted_lags[(nranks - 1) / 2];
    let writer: Vec<u64> = (0..nranks).map(|r| totals[r][phase::WRITER_WAIT as usize]).collect();
    let mean_writer = (writer.iter().sum::<u64>() as f64 / nranks as f64).max(1.0);
    let mut stragglers: Vec<Straggler> = Vec::new();
    for r in 0..nranks {
        let mut best: Option<Straggler> = None;
        let mut consider = |s: Straggler| {
            if best.as_ref().map_or(true, |b| s.severity > b.severity) {
                best = Some(s);
            }
        };
        let compute_ratio = compute[r] as f64 / mean_compute;
        if compute_ratio > 1.10 {
            consider(Straggler {
                rank: r as u32,
                reason: reason::SLOW_COMPUTE,
                severity: compute_ratio,
                detail: format!(
                    "compute wall {:.2}x the rank mean (predicted imbalance {:.2})",
                    compute_ratio, input.predicted_imbalance
                ),
            });
        }
        if lag_mean[r] > 50_000.0 && lag_mean[r] > 2.0 * lag_median.max(1.0) {
            consider(Straggler {
                rank: r as u32,
                reason: reason::LATE_SENDER,
                severity: lag_mean[r] / lag_median.max(1_000.0),
                detail: format!(
                    "mean send->recv lag {:.0}us vs median {:.0}us; gated peers' wait {} time(s)",
                    lag_mean[r] / 1e3,
                    lag_median / 1e3,
                    wait_blame[r]
                ),
            });
        }
        // The mean includes the suspect, so one offender among n ranks
        // caps the ratio at n — use ≥ so 2-rank layouts can still trip.
        let writer_ratio = writer[r] as f64 / mean_writer;
        if writer[r] > 1_000_000 && writer_ratio >= 2.0 {
            consider(Straggler {
                rank: r as u32,
                reason: reason::IO_BACKPRESSURE,
                severity: writer_ratio,
                detail: format!(
                    "writer backpressure {:.1}ms, {:.2}x the rank mean",
                    writer[r] as f64 / 1e6,
                    writer_ratio
                ),
            });
        }
        if let Some(s) = best {
            stragglers.push(s);
        }
    }
    stragglers.sort_by(|a, b| b.severity.total_cmp(&a.severity));

    // Disruptions in a stable order: kills (by time), then the deduped
    // collective recovery events.
    let mut disruptions: Vec<Disruption> = Vec::new();
    kills.sort_by_key(|&(_, _, ts)| ts);
    for (r, step, _) in &kills {
        disruptions.push(Disruption { rank: *r as i64, step: *step, kind: "kill".into() });
    }
    for ((_, _, kind), step) in &collective {
        disruptions.push(Disruption { rank: -1, step: *step, kind: kind.clone() });
    }

    // Coverage: the worst retained fraction across the rings.
    let coverage = input
        .retained
        .iter()
        .map(|&(recorded, cap)| {
            if recorded == 0 || recorded <= cap as u64 {
                1.0
            } else {
                cap as f64 / recorded as f64
            }
        })
        .fold(1.0_f64, f64::min);

    let mut gating: Vec<PhaseGate> = (0..NPHASE)
        .filter(|&p| gating_steps[p] > 0)
        .map(|p| PhaseGate { phase: phase::name(p as u8).to_string(), steps: gating_steps[p] })
        .collect();
    gating.sort_by(|a, b| b.steps.cmp(&a.steps));

    let steps_analyzed = common.len() as u64;
    let verdict = if steps_analyzed == 0 {
        format!("no step coverage (ring retained {:.0}% of events)", coverage * 100.0)
    } else {
        let top = &gating[0];
        let share = 100.0 * top.steps as f64 / steps_analyzed as f64;
        match stragglers.first() {
            Some(s) => format!(
                "{}-gated {:.0}% of {} steps; top straggler rank {} ({})",
                top.phase,
                share,
                steps_analyzed,
                s.rank,
                reason::name(s.reason)
            ),
            None => format!(
                "{}-gated {:.0}% of {} steps; no stragglers",
                top.phase, share, steps_analyzed
            ),
        }
    };

    Analysis { steps_analyzed, coverage, gating, rank_path, stragglers, disruptions, verdict }
}

/// Rebuild per-rank event streams from a Chrome trace produced by
/// [`crate::chrome_trace_json`] — the offline half of `yycore doctor`,
/// so a trace file on disk is as analyzable as a live recorder set.
///
/// Only the event kinds the analyzer consumes are reconstructed (phase
/// spans, step markers, send/recv instants, kills, rollbacks, retiles,
/// degraded marks); flow arrows, counters and metadata are skipped.
pub fn streams_from_chrome(text: &str) -> Result<Vec<Vec<TimedEvent>>, String> {
    let doc = Json::parse(text)?;
    let events =
        doc.get("traceEvents").and_then(|v| v.as_arr()).ok_or("missing traceEvents array")?;
    let mut streams: BTreeMap<usize, Vec<TimedEvent>> = BTreeMap::new();
    let ns = |v: f64| -> u64 { (v * 1000.0).round().max(0.0) as u64 };
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if ph != "X" && ph != "i" {
            continue;
        }
        let name = e.get("name").and_then(|v| v.as_str()).unwrap_or("");
        let rank = match e.get("tid").and_then(|v| v.as_f64()) {
            Some(t) if t >= 0.0 => t as usize,
            _ => continue,
        };
        let ts = match e.get("ts").and_then(|v| v.as_f64()) {
            Some(t) => t,
            None => continue,
        };
        let arg = |k: &str| e.get("args").and_then(|a| a.get(k)).and_then(|v| v.as_f64());
        let event = if ph == "X" {
            let Some(code) = phase::code(name) else { continue };
            let dur = e.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
            // The ring stamps spans at their end; the trace stores the
            // start, so re-stamp at start + duration.
            Some(TimedEvent {
                ts_ns: ns(ts + dur),
                event: Event::Phase { phase: code, dur_ns: ns(dur) },
            })
        } else if let Some(rest) = name.strip_prefix("send ") {
            let _ = rest;
            Some(TimedEvent {
                ts_ns: ns(ts),
                event: Event::Send {
                    peer: arg("to").unwrap_or(0.0) as u32,
                    class: crate::event::class::UNKNOWN,
                    bytes: arg("bytes").unwrap_or(0.0) as u64,
                    tag16: arg("tag").unwrap_or(0.0) as u16,
                    seq: arg("seq").unwrap_or(0.0) as u64,
                },
            })
        } else if name.starts_with("recv ") {
            Some(TimedEvent {
                ts_ns: ns(ts),
                event: Event::Recv {
                    peer: arg("from").unwrap_or(0.0) as u32,
                    class: crate::event::class::UNKNOWN,
                    bytes: arg("bytes").unwrap_or(0.0) as u64,
                    tag16: arg("tag").unwrap_or(0.0) as u16,
                    seq: arg("seq").unwrap_or(0.0) as u64,
                },
            })
        } else if name.starts_with("step ") {
            arg("step").map(|s| TimedEvent { ts_ns: ns(ts), event: Event::StepBegin { step: s as u64 } })
        } else if name == "kill injected" {
            arg("step")
                .map(|s| TimedEvent { ts_ns: ns(ts), event: Event::KillInjected { step: s as u64 } })
        } else if name == "rollback" {
            Some(TimedEvent {
                ts_ns: ns(ts),
                event: Event::Rollback {
                    pass: arg("pass").unwrap_or(0.0) as u64,
                    resume_step: arg("resume_step").unwrap_or(0.0) as u64,
                },
            })
        } else if name == "retile" {
            Some(TimedEvent {
                ts_ns: ns(ts),
                event: Event::Retile {
                    pth: arg("pth").unwrap_or(0.0) as u16,
                    pph: arg("pph").unwrap_or(0.0) as u16,
                    pass: arg("pass").unwrap_or(0.0) as u64,
                    resume_step: arg("resume_step").unwrap_or(0.0) as u64,
                },
            })
        } else if name == "degraded" {
            Some(TimedEvent {
                ts_ns: ns(ts),
                event: Event::Degraded {
                    pass: arg("pass").unwrap_or(0.0) as u64,
                    checkpoint_every: arg("checkpoint_every").unwrap_or(0.0) as u64,
                },
            })
        } else {
            None
        };
        if let Some(te) = event {
            streams.entry(rank).or_default().push(te);
        }
    }
    if streams.is_empty() {
        return Err("trace contains no analyzable events".into());
    }
    // Dense world-rank indexing up to the highest tid, ring order
    // (oldest first) restored within each stream.
    let max_rank = *streams.keys().max().expect("non-empty");
    let mut out = vec![Vec::new(); max_rank + 1];
    for (r, mut evs) in streams {
        evs.sort_by_key(|te| te.ts_ns);
        out[r] = evs;
    }
    Ok(out)
}

/// Ledger schema tag, written on every line of `runs.jsonl`.
pub const LEDGER_SCHEMA: &str = "yy.doctor.ledger.v1";

/// One compact run summary in the cross-run regression ledger.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerEntry {
    /// Free-form source label (`bench`, `ci`, a hostname, …).
    pub label: String,
    /// Position in the ledger file (assigned by the appender; `since`
    /// references use `label#seq`).
    pub seq: u64,
    /// Steps the summarized run advanced.
    pub steps: u64,
    /// Grid points of the run.
    pub grid_points: u64,
    /// Tile layout `(pth, pph)`; `(0, 0)` for serial.
    pub layout: (u64, u64),
    /// Checkpoint shard codec in effect (`none` when output was off).
    pub codec: String,
    /// Step cost normalized to the grid (lower is better).
    pub ns_per_point: f64,
    /// Per-kernel achieved MFLOPS (higher is better), kernel-name keyed.
    pub kernel_mflops: Vec<(String, f64)>,
    /// `interior / (interior + wait)` of the run (higher is better).
    pub hidden_comm_fraction: f64,
    /// ES flagship projection in TFlops (0.0 when the source had none).
    pub es_tflops: f64,
}

impl LedgerEntry {
    /// One JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let kernels: Vec<String> = self
            .kernel_mflops
            .iter()
            .map(|(k, v)| format!(r#""{}":{}"#, escape(k), num(*v)))
            .collect();
        format!(
            r#"{{"schema":"{}","label":"{}","seq":{},"steps":{},"grid_points":{},"layout":[{},{}],"codec":"{}","ns_per_point":{},"kernel_mflops":{{{}}},"hidden_comm_fraction":{},"es_tflops":{}}}"#,
            LEDGER_SCHEMA,
            escape(&self.label),
            self.seq,
            self.steps,
            self.grid_points,
            self.layout.0,
            self.layout.1,
            escape(&self.codec),
            num(self.ns_per_point),
            kernels.join(","),
            num(self.hidden_comm_fraction),
            num(self.es_tflops),
        )
    }

    /// Parse one ledger object (schema-checked).
    pub fn from_json(j: &Json) -> Result<LedgerEntry, String> {
        let schema = j.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != LEDGER_SCHEMA {
            return Err(format!("ledger entry schema '{schema}' != '{LEDGER_SCHEMA}'"));
        }
        let f = |k: &str| j.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let layout = match j.get("layout").and_then(|v| v.as_arr()) {
            Some(a) if a.len() == 2 => (
                a[0].as_f64().unwrap_or(0.0) as u64,
                a[1].as_f64().unwrap_or(0.0) as u64,
            ),
            _ => (0, 0),
        };
        let mut kernel_mflops = Vec::new();
        if let Some(obj) = j.get("kernel_mflops").and_then(|v| v.as_obj()) {
            for (k, v) in obj {
                kernel_mflops.push((k.clone(), v.as_f64().unwrap_or(0.0)));
            }
        }
        Ok(LedgerEntry {
            label: j.get("label").and_then(|v| v.as_str()).unwrap_or("").to_string(),
            seq: f("seq") as u64,
            steps: f("steps") as u64,
            grid_points: f("grid_points") as u64,
            layout,
            codec: j.get("codec").and_then(|v| v.as_str()).unwrap_or("none").to_string(),
            ns_per_point: f("ns_per_point"),
            kernel_mflops,
            hidden_comm_fraction: f("hidden_comm_fraction"),
            es_tflops: f("es_tflops"),
        })
    }

    /// Parse a whole `runs.jsonl` document, skipping blank lines;
    /// errors carry the 1-based line number.
    pub fn parse_ledger(text: &str) -> Result<Vec<LedgerEntry>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let j = Json::parse(line).map_err(|e| format!("ledger line {}: {e}", i + 1))?;
            out.push(LedgerEntry::from_json(&j).map_err(|e| format!("ledger line {}: {e}", i + 1))?);
        }
        Ok(out)
    }
}

/// One baseline-comparison verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Metric name (`ns_per_point`, `mflops:rhs`, `es_tflops`, …).
    pub metric: String,
    /// `ok` | `regressed` | `improved`.
    pub status: String,
    /// Signed relative delta vs the baseline, in percent (positive =
    /// metric went up).
    pub delta_pct: f64,
    /// `label#seq` of the baseline entry the delta is against.
    pub since: String,
}

impl Verdict {
    /// The one-line rendering ci prints: `ok(metric, +1.2%, since x#3)`.
    pub fn line(&self) -> String {
        format!("{}({}, {:+.1}%, since {})", self.status, self.metric, self.delta_pct, self.since)
    }
}

/// Extract each history value of one metric: `(value, "label#seq")`.
fn metric_history(history: &[LedgerEntry], metric: &str) -> Vec<(f64, String)> {
    history
        .iter()
        .filter_map(|e| {
            let v = match metric {
                "ns_per_point" => e.ns_per_point,
                "hidden_comm_fraction" => e.hidden_comm_fraction,
                "es_tflops" => e.es_tflops,
                _ => metric
                    .strip_prefix("mflops:")
                    .and_then(|k| e.kernel_mflops.iter().find(|(n, _)| n == k))
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0),
            };
            (v > 0.0).then(|| (v, format!("{}#{}", e.label, e.seq)))
        })
        .collect()
}

/// Compare the newest ledger entry against its history with noise-aware
/// thresholds: a metric regresses only when it is worse than the best
/// historical value by more than `max(base_tol, 3 × the history's
/// coefficient of variation)` — so a noisy metric needs a bigger move to
/// trip than a quiet one. Lower-is-better metrics (`ns_per_point`) are
/// handled by sign; metrics the latest entry lacks are skipped.
pub fn compare(latest: &LedgerEntry, history: &[LedgerEntry], base_tol: f64) -> Vec<Verdict> {
    let mut metrics: Vec<(String, bool)> = vec![("ns_per_point".into(), false)];
    for (k, _) in &latest.kernel_mflops {
        metrics.push((format!("mflops:{k}"), true));
    }
    metrics.push(("hidden_comm_fraction".into(), true));
    metrics.push(("es_tflops".into(), true));
    let mut out = Vec::new();
    for (metric, higher_is_better) in metrics {
        let cur = metric_history(std::slice::from_ref(latest), &metric);
        let Some(&(cur, _)) = cur.first() else { continue };
        let hist = metric_history(history, &metric);
        if hist.is_empty() {
            out.push(Verdict {
                metric,
                status: "ok".into(),
                delta_pct: 0.0,
                since: "no-history".into(),
            });
            continue;
        }
        let values: Vec<f64> = hist.iter().map(|(v, _)| *v).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        let tol = base_tol.max(3.0 * cv);
        // Baseline = best historical value; "since" names the newest
        // entry that achieved it (the point to bisect back to).
        let (best, since) = hist
            .iter()
            .rev()
            .max_by(|(a, _), (b, _)| if higher_is_better { a.total_cmp(b) } else { b.total_cmp(a) })
            .cloned()
            .expect("non-empty history");
        let delta_pct = (cur - best) / best * 100.0;
        let worse = if higher_is_better { cur < best * (1.0 - tol) } else { cur > best * (1.0 + tol) };
        let better = if higher_is_better { cur > best * (1.0 + tol) } else { cur < best * (1.0 - tol) };
        let status = if worse {
            "regressed"
        } else if better {
            "improved"
        } else {
            "ok"
        };
        out.push(Verdict { metric, status: status.into(), delta_pct, since });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::class;
    use crate::ring::FlightRecorder;

    /// Build one rank's stream: per step, a begin marker plus phase
    /// spans whose durations place the rank's work in time.
    fn rank_stream(steps: u64, step_ns: u64, wait_ns: u64, offset: u64) -> Vec<TimedEvent> {
        let mut out = Vec::new();
        let mut t = offset;
        for s in 0..steps {
            out.push(TimedEvent { ts_ns: t, event: Event::StepBegin { step: s } });
            t += step_ns;
            out.push(TimedEvent {
                ts_ns: t,
                event: Event::Phase { phase: phase::INTERIOR, dur_ns: step_ns },
            });
            if wait_ns > 0 {
                t += wait_ns;
                out.push(TimedEvent {
                    ts_ns: t,
                    event: Event::Phase { phase: phase::WAIT, dur_ns: wait_ns },
                });
            }
        }
        out
    }

    #[test]
    fn interior_gated_balanced_run_has_no_stragglers() {
        let streams = vec![rank_stream(6, 1000, 0, 0), rank_stream(6, 1000, 0, 50)];
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        assert_eq!(a.steps_analyzed, 6);
        assert_eq!(a.coverage, 1.0);
        assert_eq!(a.gating[0].phase, "interior");
        assert_eq!(a.gating[0].steps, 6);
        assert!(a.stragglers.is_empty(), "{:?}", a.stragglers);
        assert_eq!(a.rank_path.iter().sum::<u64>(), 6);
        assert!(a.verdict.contains("interior-gated"), "{}", a.verdict);
    }

    #[test]
    fn slow_rank_lands_on_the_critical_path() {
        // Rank 1 computes 3x longer: it must gate every step and be the
        // top straggler with reason "slow compute".
        let streams = vec![rank_stream(5, 1000, 0, 0), rank_stream(5, 3000, 0, 0)];
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        assert_eq!(a.rank_path, vec![0, 5]);
        let top = &a.stragglers[0];
        assert_eq!(top.rank, 1);
        assert_eq!(top.reason, reason::SLOW_COMPUTE);
        assert!(top.severity > 1.4, "{}", top.severity);
    }

    /// Two ranks exchanging one message per step; rank 0's sends take
    /// `lag_ns` to arrive, so rank 1 stalls in wait.
    fn late_sender_streams(steps: u64, lag_ns: u64) -> Vec<Vec<TimedEvent>> {
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        let step_ns = 10_000u64;
        for s in 0..steps {
            let t0 = s * (step_ns + lag_ns);
            s0.push(TimedEvent { ts_ns: t0, event: Event::StepBegin { step: s } });
            s1.push(TimedEvent { ts_ns: t0, event: Event::StepBegin { step: s } });
            s0.push(TimedEvent {
                ts_ns: t0 + 100,
                event: Event::Send { peer: 1, class: class::HALO, bytes: 800, tag16: 11, seq: s },
            });
            s1.push(TimedEvent {
                ts_ns: t0 + 200,
                event: Event::Send { peer: 0, class: class::HALO, bytes: 800, tag16: 11, seq: s },
            });
            s0.push(TimedEvent {
                ts_ns: t0 + 300,
                event: Event::Recv { peer: 1, class: class::UNKNOWN, bytes: 800, tag16: 11, seq: s },
            });
            s0.push(TimedEvent {
                ts_ns: t0 + step_ns,
                event: Event::Phase { phase: phase::INTERIOR, dur_ns: step_ns },
            });
            // Rank 1's receive is delayed by the full lag.
            s1.push(TimedEvent {
                ts_ns: t0 + 100 + lag_ns,
                event: Event::Recv { peer: 0, class: class::UNKNOWN, bytes: 800, tag16: 11, seq: s },
            });
            s1.push(TimedEvent {
                ts_ns: t0 + 1000 + lag_ns,
                event: Event::Phase { phase: phase::WAIT, dur_ns: lag_ns },
            });
            s1.push(TimedEvent {
                ts_ns: t0 + 1000 + lag_ns + 2000,
                event: Event::Phase { phase: phase::INTERIOR, dur_ns: 2000 },
            });
        }
        vec![s0, s1]
    }

    #[test]
    fn late_sender_is_named_with_reason() {
        let streams = late_sender_streams(8, 5_000_000);
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        // Rank 1 stalls in wait and gates; the blame lands on rank 0.
        assert_eq!(a.gating[0].phase, "wait");
        let top = &a.stragglers[0];
        assert_eq!(top.rank, 0, "{:?}", a.stragglers);
        assert_eq!(top.reason, reason::LATE_SENDER);
        assert!(top.detail.contains("gated peers' wait"), "{}", top.detail);
        assert!(a.verdict.contains("late sender"), "{}", a.verdict);
    }

    #[test]
    fn io_backpressure_is_attributed() {
        let mut streams = vec![rank_stream(4, 1000, 0, 0), rank_stream(4, 1000, 0, 0)];
        // Rank 1 blocked 2ms on the writer each step.
        let mut t = 4 * 1000 + 10;
        for _ in 0..4 {
            t += 2_000_000;
            streams[1].push(TimedEvent {
                ts_ns: t,
                event: Event::Phase { phase: phase::WRITER_WAIT, dur_ns: 2_000_000 },
            });
        }
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        let top = &a.stragglers[0];
        assert_eq!((top.rank, top.reason), (1, reason::IO_BACKPRESSURE));
    }

    #[test]
    fn disruptions_capture_kill_and_retile() {
        let mut streams = vec![rank_stream(3, 1000, 0, 0), rank_stream(3, 1000, 0, 0)];
        streams[1].push(TimedEvent { ts_ns: 99_000, event: Event::KillInjected { step: 5 } });
        for s in streams.iter_mut() {
            s.push(TimedEvent {
                ts_ns: 100_000,
                event: Event::Retile { pth: 1, pph: 2, pass: 2, resume_step: 4 },
            });
            s.push(TimedEvent {
                ts_ns: 100_100,
                event: Event::Degraded { pass: 2, checkpoint_every: 4 },
            });
        }
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        assert_eq!(a.disruptions[0], Disruption { rank: 1, step: 5, kind: "kill".into() });
        // record_all stamps every rank; the retile must appear once.
        assert_eq!(a.disruptions.iter().filter(|d| d.kind == "retile 1x2").count(), 1);
        assert_eq!(a.disruptions.iter().filter(|d| d.kind == "degraded").count(), 1);
    }

    #[test]
    fn wraparound_degrades_gracefully_never_panics() {
        // Property: for any (capacity, steps) with heavy eviction, the
        // analyzer reports coverage < 1 and analyzes only surviving
        // steps — and never panics. Deterministic sweep over a seed
        // grid in lieu of a fuzzer (yy-obs has no dev-dependencies).
        for (cap, steps) in [(8usize, 40u64), (16, 100), (32, 33), (4, 9), (64, 64)] {
            let rec = FlightRecorder::new(cap, std::time::Instant::now());
            for s in 0..steps {
                let t = 10_000 * s;
                rec.record_at(t, Event::StepBegin { step: s });
                rec.record_at(t + 1_000 + s, Event::Phase { phase: phase::INTERIOR, dur_ns: 1000 + s });
                rec.record_at(
                    t + 2_000,
                    Event::Send { peer: 0, class: class::HALO, bytes: 8, tag16: 11, seq: s },
                );
            }
            let stream = rec.snapshot();
            let streams = vec![stream];
            let input = AnalysisInput {
                streams: &streams,
                retained: vec![(rec.recorded(), rec.capacity())],
                predicted_imbalance: 1.0,
            };
            let a = analyze(&input);
            let evicted = 3 * steps > cap as u64;
            if evicted {
                assert!(a.coverage < 1.0, "cap {cap} steps {steps}: {}", a.coverage);
                assert!(
                    a.steps_analyzed < steps,
                    "cap {cap} steps {steps}: analyzed {}",
                    a.steps_analyzed
                );
            } else {
                assert_eq!(a.coverage, 1.0);
            }
            // Whatever survived must be internally consistent.
            assert_eq!(a.rank_path.iter().sum::<u64>(), a.steps_analyzed);
            assert!(!a.verdict.is_empty());
        }
    }

    #[test]
    fn truncated_stream_missing_step_begins_is_safe() {
        // A stream that wrapped mid-step: phase spans with no opening
        // StepBegin must not be attributed (or panic).
        let streams = vec![vec![
            TimedEvent { ts_ns: 10, event: Event::Phase { phase: phase::WAIT, dur_ns: 5 } },
            TimedEvent { ts_ns: 20, event: Event::Recv { peer: 9, class: 255, bytes: 1, tag16: 1, seq: 0 } },
        ]];
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        assert_eq!(a.steps_analyzed, 0);
        assert!(a.verdict.contains("no step coverage"), "{}", a.verdict);
    }

    #[test]
    fn empty_input_yields_default() {
        let a = analyze(&AnalysisInput { streams: &[], retained: vec![], predicted_imbalance: 1.0 });
        assert_eq!(a, Analysis::default());
    }

    #[test]
    fn analysis_json_roundtrips() {
        let streams = late_sender_streams(4, 2_000_000);
        let mut a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.07 });
        a.disruptions.push(Disruption { rank: 1, step: 5, kind: "kill".into() });
        let j = Json::parse(&a.to_json()).expect("section must parse");
        let b = Analysis::from_json(&j).expect("section must decode");
        assert_eq!(a.steps_analyzed, b.steps_analyzed);
        assert_eq!(a.gating, b.gating);
        assert_eq!(a.rank_path, b.rank_path);
        assert_eq!(a.disruptions, b.disruptions);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.stragglers.len(), b.stragglers.len());
        assert_eq!(a.stragglers[0].reason, b.stragglers[0].reason);
        assert!((a.stragglers[0].severity - b.stragglers[0].severity).abs() < 1e-9);
    }

    #[test]
    fn gauges_expose_shares_and_top_straggler() {
        let streams = late_sender_streams(4, 2_000_000);
        let a = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        let g = a.gauges();
        assert_eq!(g.top_straggler, 0);
        let total: f64 = g.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares must sum to 1, got {total}");
        assert!(Analysis::default().gauges().shares.is_empty());
        assert_eq!(Analysis::default().gauges().top_straggler, -1);
    }

    #[test]
    fn chrome_roundtrip_preserves_the_diagnosis() {
        use crate::chrome::{chrome_trace_json, RankTrace};
        let streams = late_sender_streams(6, 3_000_000);
        let direct = analyze(&AnalysisInput { streams: &streams, retained: vec![], predicted_imbalance: 1.0 });
        let tracks: Vec<RankTrace> = streams
            .iter()
            .enumerate()
            .map(|(rank, events)| RankTrace { rank, events: events.clone() })
            .collect();
        let doc = chrome_trace_json(&tracks);
        let rebuilt = streams_from_chrome(&doc).expect("trace must re-import");
        let via_trace =
            analyze(&AnalysisInput { streams: &rebuilt, retained: vec![], predicted_imbalance: 1.0 });
        assert_eq!(direct.steps_analyzed, via_trace.steps_analyzed);
        assert_eq!(direct.gating, via_trace.gating);
        assert_eq!(direct.rank_path, via_trace.rank_path);
        assert_eq!(direct.stragglers[0].rank, via_trace.stragglers[0].rank);
        assert_eq!(direct.stragglers[0].reason, via_trace.stragglers[0].reason);
    }

    #[test]
    fn streams_from_chrome_rejects_garbage() {
        assert!(streams_from_chrome("not json").is_err());
        assert!(streams_from_chrome("{}").is_err());
        assert!(streams_from_chrome(r#"{"traceEvents":[]}"#).is_err());
    }

    fn entry(label: &str, seq: u64, ns_per_point: f64, rhs: f64) -> LedgerEntry {
        LedgerEntry {
            label: label.into(),
            seq,
            steps: 10,
            grid_points: 100_000,
            layout: (1, 2),
            codec: "delta".into(),
            ns_per_point,
            kernel_mflops: vec![("rhs".into(), rhs), ("rk4_combine".into(), rhs / 2.0)],
            hidden_comm_fraction: 0.8,
            es_tflops: 14.7,
        }
    }

    #[test]
    fn ledger_lines_roundtrip() {
        let e = entry("bench", 3, 612.5, 4100.0);
        let line = e.to_json_line();
        let parsed = LedgerEntry::parse_ledger(&format!("{line}\n\n{line}\n")).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], e);
        assert!(LedgerEntry::parse_ledger("{\"schema\":\"bogus\"}").is_err());
        assert!(LedgerEntry::parse_ledger("not json").is_err());
    }

    #[test]
    fn compare_flags_regression_and_improvement() {
        let history = vec![entry("b", 0, 600.0, 4000.0), entry("b", 1, 610.0, 4050.0)];
        // 30% slower step, 30% faster rhs.
        let mut latest = entry("b", 2, 800.0, 5300.0);
        latest.es_tflops = 14.7;
        let verdicts = compare(&latest, &history, 0.10);
        let by = |m: &str| verdicts.iter().find(|v| v.metric == m).unwrap();
        assert_eq!(by("ns_per_point").status, "regressed");
        assert!(by("ns_per_point").line().contains("regressed(ns_per_point"), "{}", by("ns_per_point").line());
        assert_eq!(by("mflops:rhs").status, "improved");
        assert_eq!(by("es_tflops").status, "ok");
        // The regression's "since" names the best historical entry.
        assert_eq!(by("ns_per_point").since, "b#0");
    }

    #[test]
    fn compare_is_noise_aware() {
        // History with ~20% swings: a 25% drop is within 3×cv noise.
        let history = vec![
            entry("b", 0, 500.0, 4000.0),
            entry("b", 1, 700.0, 4000.0),
            entry("b", 2, 520.0, 4000.0),
            entry("b", 3, 690.0, 4000.0),
        ];
        let latest = entry("b", 4, 620.0, 4000.0);
        let verdicts = compare(&latest, &history, 0.10);
        let ns = verdicts.iter().find(|v| v.metric == "ns_per_point").unwrap();
        assert_eq!(ns.status, "ok", "noisy history must widen the threshold: {ns:?}");
    }

    #[test]
    fn compare_without_history_is_ok() {
        let verdicts = compare(&entry("b", 0, 600.0, 4000.0), &[], 0.10);
        assert!(verdicts.iter().all(|v| v.status == "ok" && v.since == "no-history"));
    }
}
