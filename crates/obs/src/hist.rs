//! Log₂-bucketed latency histograms with exact cross-rank merge.
//!
//! A mean hides exactly what matters about receive-wait time: the
//! overlapped pipeline turns *median* waits into compute, so the step
//! time is set by the *tail* (one slow rank holds the barrier). The
//! histogram keeps the full shape at fixed cost: bucket `i` counts
//! values in `[2^(i−1), 2^i)` (bucket 0 counts zeros), 64 buckets cover
//! the whole `u64` range, and quantiles are read off the cumulative
//! counts with at most 2× resolution error — plenty to tell a 100 µs p50
//! from a 10 ms p99.
//!
//! Merging two snapshots adds their buckets, counts and sums and takes
//! the max of maxima — associative and commutative (property-tested), so
//! per-rank histograms can be reduced across ranks in any order, e.g.
//! through an f64 allreduce (exact while counts stay below 2⁵³, see
//! [`HistogramSnapshot::to_f64s`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets; covers the full `u64` value range.
pub const BUCKETS: usize = 64;

#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Upper edge (inclusive) of bucket `i` — the value quantile reads
/// report.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram: relaxed atomic buckets, shareable between the
/// recording thread and a snapshotting reader.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// An immutable copy of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable, `Copy` histogram state: what crosses rank boundaries
/// and lands in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (mean = sum/count).
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    pub max: u64,
    /// `buckets[i]` counts values in `[2^(i−1), 2^i)`; bucket 0 counts
    /// zeros.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

/// Number of f64 words [`HistogramSnapshot::to_f64s`] produces.
pub const MERGE_WORDS: usize = BUCKETS + 2;

impl HistogramSnapshot {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), reported as the upper edge of
    /// the bucket holding the ⌈q·count⌉-th smallest value, clamped to
    /// the observed max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Combine two snapshots: buckets/count/sum add, max takes the max.
    /// Associative and commutative with [`HistogramSnapshot::default`]
    /// as identity (property-tested), so cross-rank reduction order
    /// never matters.
    pub fn merged(self, other: HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
        }
    }

    /// The sum-mergeable words (`buckets‖count‖sum`) as f64, for an
    /// elementwise-Sum allreduce across ranks; reduce `max` separately
    /// with a Max. Exact while every count stays below 2⁵³ — the
    /// mailbox would overflow long before the histograms do.
    pub fn to_f64s(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.buckets.iter().map(|&b| b as f64).collect();
        v.push(self.count as f64);
        v.push(self.sum as f64);
        v
    }

    /// Rebuild from [`HistogramSnapshot::to_f64s`] words plus the
    /// separately-reduced max.
    pub fn from_f64s(words: &[f64], max: u64) -> HistogramSnapshot {
        assert_eq!(words.len(), MERGE_WORDS, "merged histogram word count");
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| words[i] as u64),
            count: words[BUCKETS] as u64,
            sum: words[BUCKETS + 1] as u64,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::new();
        // 90 fast values (~1 µs) and 10 slow ones (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        let p50 = s.p50();
        assert!((1_000..4_000).contains(&p50), "p50 {p50} should sit in the fast bucket");
        let p99 = s.p99();
        assert!(p99 >= 524_288, "p99 {p99} should sit in the slow bucket");
        assert!((s.mean() - 100_900.0).abs() < 1.0);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0), 5, "upper bucket edge (7) must clamp to the real max");
        assert_eq!(s.p50(), 5);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn merge_adds_and_maxes() {
        let a = Histogram::new();
        a.record(10);
        a.record(100);
        let b = Histogram::new();
        b.record(1_000_000);
        let m = a.snapshot().merged(b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1_000_110);
        assert_eq!(m.max, 1_000_000);
        assert_eq!(m.merged(HistogramSnapshot::default()), m, "default is the merge identity");
    }

    #[test]
    fn f64_words_roundtrip_and_sum_merge() {
        let a = Histogram::new();
        a.record(7);
        a.record(900);
        let b = Histogram::new();
        b.record(31);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        // Simulate the allreduce: elementwise sum of words, max of maxes.
        let wa = sa.to_f64s();
        let wb = sb.to_f64s();
        let summed: Vec<f64> = wa.iter().zip(&wb).map(|(x, y)| x + y).collect();
        let merged = HistogramSnapshot::from_f64s(&summed, sa.max.max(sb.max));
        assert_eq!(merged, sa.merged(sb));
        // Plain roundtrip.
        assert_eq!(HistogramSnapshot::from_f64s(&sa.to_f64s(), sa.max), sa);
    }
}
