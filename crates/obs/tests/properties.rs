//! Property suites for the observability primitives, run under the
//! in-repo deterministic harness (`yy-testkit`).
//!
//! The histogram merge must form a commutative monoid for the allreduce
//! reduction to be order-independent: ranks merge pairwise in whatever
//! association the reduction tree picks, and the run report must not
//! depend on it. The f64 round-trip must be exact because the drivers
//! ship histogram words over an f64 allreduce. The flight-recorder ring
//! must keep the *newest* events when it wraps — a post-mortem wants the
//! moments before the failure, not the start of the run.

use std::time::Instant;
use yy_obs::hist::{Histogram, HistogramSnapshot};
use yy_obs::ring::FlightRecorder;
use yy_obs::Event;
use yy_testkit::{check, tk_assert};

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn merge_is_commutative() {
    check(
        "hist_merge_commutative",
        |g| (g.vec_u64(1 << 40, 0, 64), g.vec_u64(1 << 40, 0, 64)),
        |(a, b)| {
            let (ha, hb) = (hist_of(a), hist_of(b));
            tk_assert!(ha.merged(hb) == hb.merged(ha), "a {a:?} b {b:?}");
            Ok(())
        },
    );
}

#[test]
fn merge_is_associative() {
    check(
        "hist_merge_associative",
        |g| (g.vec_u64(1 << 40, 0, 48), g.vec_u64(1 << 40, 0, 48), g.vec_u64(1 << 40, 0, 48)),
        |(a, b, c)| {
            let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));
            tk_assert!(
                ha.merged(hb).merged(hc) == ha.merged(hb.merged(hc)),
                "a {a:?} b {b:?} c {c:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn merge_equals_recording_the_concatenation() {
    check(
        "hist_merge_is_concat",
        |g| (g.vec_u64(1 << 40, 0, 64), g.vec_u64(1 << 40, 0, 64)),
        |(a, b)| {
            let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            tk_assert!(hist_of(a).merged(hist_of(b)) == hist_of(&both), "a {a:?} b {b:?}");
            Ok(())
        },
    );
}

#[test]
fn f64_word_round_trip_is_exact() {
    // The allreduce path ships bucket counts and the sum as f64; both
    // stay far below 2^53 in practice (ns durations, bounded rings), so
    // the round trip must be lossless bit-for-bit in that regime.
    check(
        "hist_f64_round_trip",
        |g| g.vec_u64(1 << 44, 0, 128),
        |values| {
            let h = hist_of(values);
            let rt = HistogramSnapshot::from_f64s(&h.to_f64s(), h.max);
            tk_assert!(rt == h, "{values:?}");
            Ok(())
        },
    );
}

#[test]
fn quantiles_are_ordered_and_bounded_by_buckets() {
    check(
        "hist_quantile_order",
        |g| g.vec_u64(1 << 50, 1, 96),
        |values| {
            let h = hist_of(values);
            let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
            tk_assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
            // Log₂ buckets over-estimate by at most 2x; the reported
            // quantile never exceeds twice the true maximum.
            let max = *values.iter().max().unwrap();
            tk_assert!(p99 <= max.saturating_mul(2).max(1), "p99 {p99} max {max}");
            Ok(())
        },
    );
}

#[test]
fn ring_wrap_keeps_the_newest_events() {
    check(
        "ring_keeps_newest",
        |g| (g.range_usize(1, 64), g.below(256) + 1),
        |&(capacity, total)| {
            let rec = FlightRecorder::new(capacity, Instant::now());
            rec.set_enabled(true);
            for step in 0..total {
                rec.record_at(step, Event::StepBegin { step });
            }
            let snap = rec.snapshot();
            let kept = (total as usize).min(capacity);
            tk_assert!(snap.len() == kept, "kept {} of {total} (cap {capacity})", snap.len());
            // Oldest-to-newest, ending at the last event recorded.
            let first = total - kept as u64;
            for (i, ev) in snap.iter().enumerate() {
                let want = first + i as u64;
                tk_assert!(
                    ev.event == Event::StepBegin { step: want },
                    "slot {i}: {:?}, want step {want}",
                    ev.event
                );
            }
            tk_assert!(rec.recorded() == total, "recorded() {}", rec.recorded());
            Ok(())
        },
    );
}

#[test]
fn disabled_ring_records_nothing() {
    check(
        "ring_disabled_is_inert",
        |g| g.range_usize(1, 32),
        |&capacity| {
            let rec = FlightRecorder::new(capacity, Instant::now());
            rec.set_enabled(false); // the fast path must drop events entirely
            for step in 0..10 {
                rec.record(Event::StepBegin { step });
            }
            tk_assert!(rec.snapshot().is_empty(), "disabled ring kept events");
            tk_assert!(rec.recorded() == 0, "recorded() {}", rec.recorded());
            Ok(())
        },
    );
}
