//! Compressible MHD in spherical coordinates — the physics of the
//! geodynamo simulation (§III of the paper).
//!
//! The model: an electrically conducting compressible fluid in a rotating
//! spherical shell (inner radius `ri`, outer `ro`), central gravity
//! `g = −g0/r² r̂`, fixed wall temperatures (hot inner, cold outer),
//! no-slip co-rotating walls. The normalized equations (paper eqs. 2–6):
//!
//! ```text
//! ∂ρ/∂t = −∇·f
//! ∂f/∂t = −∇·(v f) − ∇p + j×B + ρ g + 2ρ v×Ω + µ(∇²v + ⅓∇(∇·v))
//! ∂p/∂t = −v·∇p − γ p ∇·v + (γ−1) K ∇²T + (γ−1) η j² + (γ−1) Φ
//! ∂A/∂t = −E
//! p = ρT,  B = ∇×A,  j = ∇×B,  E = −v×B + η j,
//! Φ = 2µ (e_ij e_ij − ⅓(∇·v)²)
//! ```
//!
//! Basic variables: mass density ρ, pressure p, mass flux density
//! f = ρv, and magnetic vector potential A. B, j, E, v, T are subsidiary.
//!
//! Discretization follows the paper: **second-order central finite
//! differences in spherical coordinates** and **classical RK4** in time.
//! One design constraint shapes everything here: each RK4 stage performs
//! exactly *one* ghost-fill (halo exchange + overset interpolation) of the
//! eight state arrays. Consequently every subsidiary quantity must be
//! computable locally from state values in the one-node stencil halo:
//!
//! * `v = f/ρ`, `T = p/ρ` — pointwise;
//! * `B = ∇×A` — first derivatives;
//! * `j = ∇×∇×A = ∇(∇·A) − ∇²A` — expanded into direct second-derivative
//!   stencils of A (including the 4-point mixed-derivative cross), instead
//!   of differentiating a communicated B;
//! * `∇(∇·v)` in the viscous force — likewise expanded directly.
#![warn(missing_docs)]

pub mod bc;
pub mod energy;
pub mod init;
pub mod ops;
pub mod params;
pub mod rhs;
pub mod spectra;
pub mod state;
pub mod tables;
pub mod timestep;

pub use bc::{apply_physical_bc, MagneticBc};
pub use energy::Diagnostics;
pub use init::{hydrostatic_profile, initialize};
pub use params::PhysParams;
pub use rhs::{compute_rhs, InteriorRange, RHS_FLOPS_PER_POINT};
pub use state::State;
pub use tables::ForceTables;
pub use timestep::{cfl_timestep, wave_speed_breakdown, wave_speed_max, SpeedBreakdown};
