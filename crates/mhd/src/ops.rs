//! Second-order central finite-difference stencils in spherical
//! coordinates.
//!
//! The kernels process one `(θ, φ)` column at a time: [`Cols`] borrows the
//! nine radial rows around a column (center, the four edge neighbours and
//! the four corner neighbours) so the inner loop over the radial index is
//! unit-stride — the structure the Earth Simulator vectorized and modern
//! CPUs stream through cache.
//!
//! Index conventions: `j` grows with colatitude θ (towards south), `k`
//! grows with longitude φ (towards east). First derivatives are 2-point
//! centered, second derivatives 3-point, mixed second derivatives 4-point
//! crosses; all are O(h²).

use yy_field::Array3;

/// Precomputed inverse spacings for the stencil formulas.
#[derive(Debug, Clone, Copy)]
pub struct Spacings {
    /// `1 / (2Δr)` — first radial derivative factor.
    pub inv_2dr: f64,
    /// `1 / (2Δθ)`.
    pub inv_2dt: f64,
    /// `1 / (2Δφ)`.
    pub inv_2dp: f64,
    /// `1 / Δr²` — second derivative factor.
    pub inv_dr2: f64,
    /// `1 / Δθ²`.
    pub inv_dt2: f64,
    /// `1 / Δφ²`.
    pub inv_dp2: f64,
    /// `1 / (4ΔrΔθ)` — mixed derivative factor.
    pub inv_4drdt: f64,
    /// `1 / (4ΔrΔφ)`.
    pub inv_4drdp: f64,
    /// `1 / (4ΔθΔφ)`.
    pub inv_4dtdp: f64,
}

impl Spacings {
    /// Precompute all inverse-spacing factors.
    pub fn new(dr: f64, dt: f64, dp: f64) -> Self {
        Spacings {
            inv_2dr: 0.5 / dr,
            inv_2dt: 0.5 / dt,
            inv_2dp: 0.5 / dp,
            inv_dr2: 1.0 / (dr * dr),
            inv_dt2: 1.0 / (dt * dt),
            inv_dp2: 1.0 / (dp * dp),
            inv_4drdt: 0.25 / (dr * dt),
            inv_4drdp: 0.25 / (dr * dp),
            inv_4dtdp: 0.25 / (dt * dp),
        }
    }
}

/// The nine radial rows around column `(j, k)` of one array.
///
/// Naming: `c` center; `n`/`s` = θ∓ (north/south); `w`/`e` = φ∓/φ+
/// (west/east); corners `nw`, `ne`, `sw`, `se`.
pub struct Cols<'a> {
    /// Center row.
    pub c: &'a [f64],
    /// North row (j − 1).
    pub n: &'a [f64],
    /// South row (j + 1).
    pub s: &'a [f64],
    /// West row (k − 1).
    pub w: &'a [f64],
    /// East row (k + 1).
    pub e: &'a [f64],
    /// North-west corner row.
    pub nw: &'a [f64],
    /// North-east corner row.
    pub ne: &'a [f64],
    /// South-west corner row.
    pub sw: &'a [f64],
    /// South-east corner row.
    pub se: &'a [f64],
}

impl<'a> Cols<'a> {
    /// Borrow the stencil rows around `(j, k)`. The column and all eight
    /// neighbours must lie within the padded array.
    #[inline]
    pub fn new(a: &'a Array3, j: isize, k: isize) -> Self {
        Cols {
            c: a.row(j, k),
            n: a.row(j - 1, k),
            s: a.row(j + 1, k),
            w: a.row(j, k - 1),
            e: a.row(j, k + 1),
            nw: a.row(j - 1, k - 1),
            ne: a.row(j - 1, k + 1),
            sw: a.row(j + 1, k - 1),
            se: a.row(j + 1, k + 1),
        }
    }

    /// Reslice every row to the window `[i0−1, i1+1)` so that stencil
    /// calls at the *local* index `li = i − i0 + 1` touch only in-bounds
    /// lanes of nine equal-length slices. This is the shape LLVM can
    /// bounds-check-elide and autovectorize: with `li` ranging over
    /// `1..=i1−i0` and every slice `i1−i0+2` long, each access `row[li±1]`
    /// is provably in range, so the radial inner loop compiles to
    /// straight-line unit-stride vector code. Requires `i0 ≥ 1` and
    /// `i1 + 1 ≤ nr` — the finite-difference interior always satisfies it.
    #[inline]
    pub fn window(&self, i0: usize, i1: usize) -> Cols<'a> {
        let w = |row: &'a [f64]| &row[i0 - 1..i1 + 1];
        Cols {
            c: w(self.c),
            n: w(self.n),
            s: w(self.s),
            w: w(self.w),
            e: w(self.e),
            nw: w(self.nw),
            ne: w(self.ne),
            sw: w(self.sw),
            se: w(self.se),
        }
    }

    /// [`Cols::new`] and [`Cols::window`] in one step: borrow the nine
    /// stencil rows already cut to `[i0−1, i1+1)`, skipping the
    /// intermediate full-row slices (the fused RHS builds eleven of
    /// these per column, so the halved slice count is measurable).
    /// Identical slices to `Cols::new(a, j, k).window(i0, i1)`.
    #[inline]
    pub fn windowed(a: &'a Array3, j: isize, k: isize, i0: usize, i1: usize) -> Self {
        let w = |j: isize, k: isize| &a.row(j, k)[i0 - 1..i1 + 1];
        Cols {
            c: w(j, k),
            n: w(j - 1, k),
            s: w(j + 1, k),
            w: w(j, k - 1),
            e: w(j, k + 1),
            nw: w(j - 1, k - 1),
            ne: w(j - 1, k + 1),
            sw: w(j + 1, k - 1),
            se: w(j + 1, k + 1),
        }
    }

    /// ∂/∂r at radial index `i` (requires `1 ≤ i ≤ nr−2`).
    #[inline]
    pub fn ddr(&self, i: usize, sp: &Spacings) -> f64 {
        (self.c[i + 1] - self.c[i - 1]) * sp.inv_2dr
    }

    /// ∂/∂θ.
    #[inline]
    pub fn ddt(&self, i: usize, sp: &Spacings) -> f64 {
        (self.s[i] - self.n[i]) * sp.inv_2dt
    }

    /// ∂/∂φ.
    #[inline]
    pub fn ddp(&self, i: usize, sp: &Spacings) -> f64 {
        (self.e[i] - self.w[i]) * sp.inv_2dp
    }

    /// ∂²/∂r².
    #[inline]
    pub fn d2r(&self, i: usize, sp: &Spacings) -> f64 {
        (self.c[i + 1] - 2.0 * self.c[i] + self.c[i - 1]) * sp.inv_dr2
    }

    /// ∂²/∂θ².
    #[inline]
    pub fn d2t(&self, i: usize, sp: &Spacings) -> f64 {
        (self.s[i] - 2.0 * self.c[i] + self.n[i]) * sp.inv_dt2
    }

    /// ∂²/∂φ².
    #[inline]
    pub fn d2p(&self, i: usize, sp: &Spacings) -> f64 {
        (self.e[i] - 2.0 * self.c[i] + self.w[i]) * sp.inv_dp2
    }

    /// ∂²/∂r∂θ (4-point cross).
    #[inline]
    pub fn drt(&self, i: usize, sp: &Spacings) -> f64 {
        ((self.s[i + 1] - self.s[i - 1]) - (self.n[i + 1] - self.n[i - 1])) * sp.inv_4drdt
    }

    /// ∂²/∂r∂φ.
    #[inline]
    pub fn drp(&self, i: usize, sp: &Spacings) -> f64 {
        ((self.e[i + 1] - self.e[i - 1]) - (self.w[i + 1] - self.w[i - 1])) * sp.inv_4drdp
    }

    /// ∂²/∂θ∂φ.
    #[inline]
    pub fn dtp(&self, i: usize, sp: &Spacings) -> f64 {
        ((self.se[i] - self.sw[i]) - (self.ne[i] - self.nw[i])) * sp.inv_4dtdp
    }

    /// Scalar Laplacian in spherical coordinates:
    /// `∇²q = q_rr + (2/r) q_r + (1/r²)(q_θθ + cot θ q_θ) + q_φφ/(r² sin²θ)`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn laplacian(
        &self,
        i: usize,
        sp: &Spacings,
        inv_r: f64,
        inv_sin2: f64,
        cot_t: f64,
    ) -> f64 {
        let inv_r2 = inv_r * inv_r;
        self.d2r(i, sp)
            + 2.0 * inv_r * self.ddr(i, sp)
            + inv_r2 * (self.d2t(i, sp) + cot_t * self.ddt(i, sp))
            + inv_r2 * inv_sin2 * self.d2p(i, sp)
    }
}

/// Geometric factors of one `(θ, φ)` column, evaluated once per column and
/// reused across the radial loop and all fields.
#[derive(Debug, Clone, Copy)]
pub struct ColGeom {
    /// `sin θ` at the column.
    pub sin_t: f64,
    /// `cos θ`.
    pub cos_t: f64,
    /// `cot θ`.
    pub cot_t: f64,
    /// `1 / sin θ`.
    pub inv_sin: f64,
    /// `1 / sin² θ`.
    pub inv_sin2: f64,
    /// `sin θ` at the north (j−1) neighbour column — the metric-weighted
    /// θ-derivatives need it.
    pub sin_n: f64,
    /// `sin θ` at the south (j+1) neighbour column.
    pub sin_s: f64,
}

impl ColGeom {
    /// Evaluate the factors at local column `j` of metric `m`.
    pub fn new(m: &yy_mesh::Metric, j: isize) -> Self {
        let sin_t = m.sin_t(j);
        let inv_sin = 1.0 / sin_t;
        ColGeom {
            sin_t,
            cos_t: m.cos_t(j),
            cot_t: m.cot_t(j),
            inv_sin,
            inv_sin2: inv_sin * inv_sin,
            sin_n: m.sin_t(j - 1),
            sin_s: m.sin_t(j + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yy_field::Shape;
    use yy_mesh::{Metric, PatchGrid, PatchSpec};

    /// Sample q(r, θ, φ) = r² sin²θ cos φ on a full-panel array.
    fn sample(grid: &PatchGrid) -> Array3 {
        Array3::from_fn(grid.full_shape(), |i, j, k| {
            let r = grid.r().coord(i);
            let t = grid.theta().coord_signed(j);
            let p = grid.phi().coord_signed(k);
            r * r * t.sin().powi(2) * p.cos()
        })
    }

    struct Exact {
        r: f64,
        t: f64,
        p: f64,
    }

    impl Exact {
        // Hand-derived derivatives of q = r² sin²θ cos φ.
        fn ddr(&self) -> f64 {
            2.0 * self.r * self.t.sin().powi(2) * self.p.cos()
        }
        fn ddt(&self) -> f64 {
            self.r * self.r * (2.0 * self.t).sin() * self.p.cos()
        }
        fn ddp(&self) -> f64 {
            -self.r * self.r * self.t.sin().powi(2) * self.p.sin()
        }
        fn d2r(&self) -> f64 {
            2.0 * self.t.sin().powi(2) * self.p.cos()
        }
        fn d2t(&self) -> f64 {
            2.0 * self.r * self.r * (2.0 * self.t).cos() * self.p.cos()
        }
        fn d2p(&self) -> f64 {
            -self.r * self.r * self.t.sin().powi(2) * self.p.cos()
        }
        fn drt(&self) -> f64 {
            2.0 * self.r * (2.0 * self.t).sin() * self.p.cos()
        }
        fn drp(&self) -> f64 {
            -2.0 * self.r * self.t.sin().powi(2) * self.p.sin()
        }
        fn dtp(&self) -> f64 {
            -self.r * self.r * (2.0 * self.t).sin() * self.p.sin()
        }
        /// ∇²q = 6 sin²θ cosφ + (2cos²θ + 2cos2θ) cosφ − cosφ
        /// (radial + colatitude + longitude parts, hand-derived).
        fn laplacian(&self) -> f64 {
            let cp = self.p.cos();
            let radial = 6.0 * self.t.sin().powi(2) * cp;
            let colat = (2.0 * self.t.cos().powi(2) + 2.0 * (2.0 * self.t).cos()) * cp;
            let lon = -cp;
            radial + colat + lon
        }
    }

    fn max_errors(nth: usize) -> [f64; 10] {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(nth, nth, 0.35, 1.0));
        let q = sample(&grid);
        let m = Metric::full(&grid);
        let sp = Spacings::new(m.dr, m.dth, m.dph);
        let (nr, nthg, nphg) = grid.dims();
        let mut errs = [0.0_f64; 10];
        for j in 1..(nthg as isize - 1) {
            for k in 1..(nphg as isize - 1) {
                let cols = Cols::new(&q, j, k);
                let geom = ColGeom::new(&m, j);
                for i in 1..nr - 1 {
                    let ex = Exact { r: m.r[i], t: m.theta(j), p: m.phi(k) };
                    let inv_r = m.inv_r[i];
                    let got = [
                        cols.ddr(i, &sp),
                        cols.ddt(i, &sp),
                        cols.ddp(i, &sp),
                        cols.d2r(i, &sp),
                        cols.d2t(i, &sp),
                        cols.d2p(i, &sp),
                        cols.drt(i, &sp),
                        cols.drp(i, &sp),
                        cols.dtp(i, &sp),
                        cols.laplacian(i, &sp, inv_r, geom.inv_sin2, geom.cot_t),
                    ];
                    let exact = [
                        ex.ddr(),
                        ex.ddt(),
                        ex.ddp(),
                        ex.d2r(),
                        ex.d2t(),
                        ex.d2p(),
                        ex.drt(),
                        ex.drp(),
                        ex.dtp(),
                        ex.laplacian(),
                    ];
                    for (e, (g, x)) in errs.iter_mut().zip(got.iter().zip(exact)) {
                        *e = e.max((g - x).abs());
                    }
                }
            }
        }
        errs
    }

    #[test]
    fn all_stencils_converge_second_order() {
        let e1 = max_errors(9);
        let e2 = max_errors(17);
        let names = [
            "ddr", "ddt", "ddp", "d2r", "d2t", "d2p", "drt", "drp", "dtp", "laplacian",
        ];
        for idx in 0..10 {
            // Radial derivatives of r² are exact for 2nd-order stencils, so
            // allow either tiny absolute error or ≥ 1.7 convergence rate.
            if e2[idx] < 1e-10 {
                continue;
            }
            let rate = (e1[idx] / e2[idx]).log2();
            assert!(
                rate > 1.7,
                "{}: rate {rate:.2} (errors {:.3e} → {:.3e})",
                names[idx],
                e1[idx],
                e2[idx]
            );
        }
    }

    #[test]
    fn radial_stencils_are_exact_for_quadratics() {
        // Central differences reproduce polynomials of degree ≤ 2 exactly.
        let shape = Shape::new(8, 3, 3, 1, 1);
        let dr = 0.1;
        let a = Array3::from_fn(shape, |i, _, _| {
            let r = i as f64 * dr;
            3.0 * r * r - 2.0 * r + 1.0
        });
        let sp = Spacings::new(dr, 1.0, 1.0);
        let cols = Cols::new(&a, 1, 1);
        for i in 1..7 {
            let r = i as f64 * dr;
            assert!((cols.ddr(i, &sp) - (6.0 * r - 2.0)).abs() < 1e-12);
            assert!((cols.d2r(i, &sp) - 6.0).abs() < 1e-10);
        }
    }

    #[test]
    fn mixed_stencil_is_exact_for_bilinear() {
        let shape = Shape::new(4, 4, 4, 1, 1);
        let (dt, dp) = (0.2, 0.3);
        let a = Array3::from_fn(shape, |_, j, k| (j as f64 * dt) * (k as f64 * dp) * 5.0);
        let sp = Spacings::new(1.0, dt, dp);
        let cols = Cols::new(&a, 1, 1);
        for i in 0..4 {
            assert!((cols.dtp(i, &sp) - 5.0).abs() < 1e-12);
        }
    }

    /// A windowed `Cols` must reproduce every stencil of the unwindowed
    /// one bit-for-bit at the shifted local index — the fused RHS kernel
    /// relies on this identity for its bit-exactness guarantee.
    #[test]
    fn windowed_stencils_are_bit_identical() {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(13, 11, 0.35, 1.0));
        let q = sample(&grid);
        let m = Metric::full(&grid);
        let sp = Spacings::new(m.dr, m.dth, m.dph);
        let (nr, nthg, nphg) = grid.dims();
        for (i0, i1) in [(1, nr - 1), (1, 2), (3, 7), (nr - 4, nr - 1)] {
            for j in 1..(nthg as isize - 1) {
                for k in 1..(nphg as isize - 1) {
                    let cols = Cols::new(&q, j, k);
                    let geom = ColGeom::new(&m, j);
                    let win = cols.window(i0, i1);
                    for i in i0..i1 {
                        let li = i - i0 + 1;
                        assert_eq!(cols.ddr(i, &sp), win.ddr(li, &sp));
                        assert_eq!(cols.ddt(i, &sp), win.ddt(li, &sp));
                        assert_eq!(cols.ddp(i, &sp), win.ddp(li, &sp));
                        assert_eq!(cols.d2r(i, &sp), win.d2r(li, &sp));
                        assert_eq!(cols.d2t(i, &sp), win.d2t(li, &sp));
                        assert_eq!(cols.d2p(i, &sp), win.d2p(li, &sp));
                        assert_eq!(cols.drt(i, &sp), win.drt(li, &sp));
                        assert_eq!(cols.drp(i, &sp), win.drp(li, &sp));
                        assert_eq!(cols.dtp(i, &sp), win.dtp(li, &sp));
                        assert_eq!(
                            cols.laplacian(i, &sp, m.inv_r[i], geom.inv_sin2, geom.cot_t),
                            win.laplacian(li, &sp, m.inv_r[i], geom.inv_sin2, geom.cot_t),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn col_geom_matches_metric() {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(6, 13, 0.35, 1.0));
        let m = Metric::full(&grid);
        let g = ColGeom::new(&m, 3);
        assert!((g.sin_t - m.sin_t(3)).abs() < 1e-15);
        assert!((g.cot_t * g.sin_t - g.cos_t).abs() < 1e-14);
        assert!((g.inv_sin2 * g.sin_t * g.sin_t - 1.0).abs() < 1e-13);
        assert!((g.sin_n - m.sin_t(2)).abs() < 1e-15);
        assert!((g.sin_s - m.sin_t(4)).abs() < 1e-15);
    }
}
