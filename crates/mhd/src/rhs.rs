//! Right-hand side of the normalized compressible MHD system
//! (paper eqs. 2–6), discretized with 2nd-order central differences in
//! spherical coordinates.
//!
//! # Formulas
//!
//! With `v = f/ρ`, `T = p/ρ`, the evaluated terms are:
//!
//! **Continuity** `∂ρ/∂t = −∇·f` with
//! `∇·f = (1/r²)∂r(r²f_r) + (1/(r sinθ))∂θ(sinθ f_θ) + (1/(r sinθ))∂φ f_φ`.
//!
//! **Momentum** (component `c` of `∇·(vf)`, conservative flux form plus
//! curvature terms):
//! ```text
//! [∇·(vf)]_r = Flux(f_r) − (f_θ v_θ + f_φ v_φ)/r
//! [∇·(vf)]_θ = Flux(f_θ) + f_θ v_r / r − cot θ f_φ v_φ / r
//! [∇·(vf)]_φ = Flux(f_φ) + f_φ v_r / r + cot θ f_φ v_θ / r
//! Flux(q) = (1/r²)∂r(r² v_r q) + (1/(r sinθ))∂θ(sinθ v_θ q)
//!         + (1/(r sinθ))∂φ(v_φ q)
//! ```
//!
//! **Magnetic field** `B = ∇×A` (first derivatives of the state), and
//! **current** via the identity `j = ∇×B = ∇(∇·A) − ∇²A`, evaluated with
//! direct second-derivative stencils of A so that no communicated
//! intermediate field is needed (see the crate docs).
//!
//! For a vector field Q the two second-derivative primitives are
//! ```text
//! (∇²Q)_r = ∇²Q_r − (2/r²)(Q_r + ∂θQ_θ + cotθ Q_θ + (1/sinθ)∂φQ_φ)
//! (∇²Q)_θ = ∇²Q_θ + (2/r²)∂θQ_r − Q_θ/(r²sin²θ) − (2cosθ/(r²sin²θ))∂φQ_φ
//! (∇²Q)_φ = ∇²Q_φ + (2/(r²sinθ))∂φQ_r + (2cosθ/(r²sin²θ))∂φQ_θ − Q_φ/(r²sin²θ)
//! ```
//! and, writing `H = cotθ Q_θ + ∂θQ_θ + (1/sinθ)∂φQ_φ` so that
//! `∇·Q = ∂rQ_r + 2Q_r/r + H/r`:
//! ```text
//! [∇(∇·Q)]_r = ∂rrQ_r + (2/r)∂rQ_r − 2Q_r/r² + (1/r)∂rH − H/r²
//! [∇(∇·Q)]_θ = (1/r)(∂r∂θQ_r + (2/r)∂θQ_r + (1/r)∂θH)
//! [∇(∇·Q)]_φ = (1/(r sinθ))(∂r∂φQ_r + (2/r)∂φQ_r + (1/r)∂φH)
//! ∂rH = cotθ ∂rQ_θ + ∂r∂θQ_θ + (1/sinθ)∂r∂φQ_φ
//! ∂θH = −Q_θ/sin²θ + cotθ ∂θQ_θ + ∂θθQ_θ − (cosθ/sin²θ)∂φQ_φ + (1/sinθ)∂θ∂φQ_φ
//! ∂φH = cotθ ∂φQ_θ + ∂θ∂φQ_θ + (1/sinθ)∂φφQ_φ
//! ```
//!
//! **Strain tensor** (for the viscous heating Φ):
//! ```text
//! e_rr = ∂r v_r                e_θθ = (1/r)∂θv_θ + v_r/r
//! e_φφ = (1/(r sinθ))∂φv_φ + v_r/r + cotθ v_θ/r
//! e_rθ = ½((1/r)∂θv_r + ∂rv_θ − v_θ/r)
//! e_rφ = ½((1/(r sinθ))∂φv_r + ∂rv_φ − v_φ/r)
//! e_θφ = ½((1/(r sinθ))∂φv_θ + (1/r)∂θv_φ − cotθ v_φ/r)
//! ```

use crate::ops::{ColGeom, Cols, Spacings};
use crate::params::PhysParams;
use crate::state::State;
use crate::tables::ForceTables;
use yy_field::{Array3, Meters, Shape, VectorField};
use yy_mesh::Metric;
use yy_obs::counters::{kernel, KernelTally};

/// Approximate floating-point operations per interior grid point of one
/// RHS evaluation, counted from the kernel source (stencil arithmetic,
/// metric products, force assembly). Used by the FLOP meter; the Earth
/// Simulator model scales this to the machine's counters. The count is
/// dominated by the two vector second-derivative primitives (j and the
/// viscous force) and the advection fluxes.
pub const RHS_FLOPS_PER_POINT: u64 = 640;

/// Modeled values read per interior point of one RHS evaluation, for the
/// fused sweep: 5 state reads in the `v`/`T` precompute (ρ, p, f×3) plus
/// 12 array streams through the fused column passes (8 state + v×3 + T).
/// Under the φ-tile blocking each array's stencil rows stream through
/// cache roughly once per sweep, so the model charges one read per array
/// per point; the 9 radial scratch rows (B, j, ∇p buffers, ≈2 KB)
/// stay L1-resident and are not charged. A traffic model for the
/// roofline, not a cache measurement. (The pre-rewrite unfused kernel
/// modeled 8 × 7 reads/point — each state array billed once per distinct
/// stencil leg, the cache behaviour of one mega-loop traversal.)
pub const RHS_READS_PER_POINT: u64 = 17;

/// Values written per interior point: v×3 + T in the precompute plus the
/// 8 tendency arrays.
pub const RHS_WRITES_PER_POINT: u64 = 12;

/// Fused radial passes the kernel makes over each `(θ, φ)` column:
/// continuity, B = ∇×A, the current j, ∇p, advection ×3, force assembly,
/// viscous force, the pressure equation (advection + heating +
/// diffusion, one pass), induction. The counter accounting bills `loops`
/// and `vector_elements` per pass so `avg_vector_length` stays the
/// radial interior extent regardless of decomposition or fusion degree.
pub const RHS_PASSES_PER_COLUMN: u64 = 11;

/// Which nodes an RHS evaluation updates: tile-local index ranges of the
/// finite-difference interior (globally non-frame columns, radially
/// interior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteriorRange {
    /// First radial index updated (inclusive).
    pub i0: usize,
    /// One past the last radial index.
    pub i1: usize,
    /// First local colatitude index updated.
    pub j0: isize,
    /// One past the last colatitude index.
    pub j1: isize,
    /// First local longitude index updated.
    pub k0: isize,
    /// One past the last longitude index.
    pub k1: isize,
}

impl InteriorRange {
    /// The full-panel interior: radial `1..nr−1`, horizontal inside the
    /// overset frame.
    pub fn full_panel(grid: &yy_mesh::PatchGrid) -> Self {
        let (nr, nth, nph) = grid.dims();
        let f = grid.frame() as isize;
        InteriorRange {
            i0: 1,
            i1: nr - 1,
            j0: f,
            j1: nth as isize - f,
            k0: f,
            k1: nph as isize - f,
        }
    }

    /// For a tile `t` of a decomposed panel: the owned columns clipped to
    /// the globally non-frame region, expressed in tile-local indices.
    pub fn for_tile(grid: &yy_mesh::PatchGrid, t: &yy_mesh::Tile) -> Self {
        let (nr, nth, nph) = grid.dims();
        let f = grid.frame();
        let gj0 = t.j0.max(f);
        let gj1 = (t.j0 + t.nth).min(nth - f);
        let gk0 = t.k0.max(f);
        let gk1 = (t.k0 + t.nph).min(nph - f);
        InteriorRange {
            i0: 1,
            i1: nr - 1,
            j0: gj0 as isize - t.j0 as isize,
            j1: gj1 as isize - t.j0 as isize,
            k0: gk0 as isize - t.k0 as isize,
            k1: gk1 as isize - t.k0 as isize,
        }
    }

    /// Number of updated nodes.
    pub fn points(&self) -> usize {
        if self.j1 <= self.j0 || self.k1 <= self.k0 || self.i1 <= self.i0 {
            return 0;
        }
        (self.i1 - self.i0) * ((self.j1 - self.j0) * (self.k1 - self.k0)) as usize
    }

    /// True when this range updates no nodes.
    pub fn is_empty(&self) -> bool {
        self.points() == 0
    }

    /// Split into a *deep interior* and a *boundary shell* for
    /// communication/compute overlap.
    ///
    /// The deep interior is the sub-range whose 9-point horizontal stencil
    /// and radial neighbours read **no** node a boundary synchronisation
    /// can modify: halo ghosts, overset frame columns, or the radial wall
    /// planes. Since the stencil radius is 1 (in i, j and k) and every
    /// edge of an interior range abuts sync-written data — ghost bands at
    /// tile edges, frame columns at panel edges, wall planes radially —
    /// shrinking by one node on every side is both necessary and
    /// sufficient. The boundary shell is the set-difference, decomposed
    /// into up to six disjoint boxes (two radial slabs, two θ bands, two
    /// φ bands) that together with the deep interior exactly tile `self`.
    ///
    /// Degenerate (thin) ranges fall back to an empty deep interior with
    /// the whole range as a single shell box.
    pub fn split_overlap(&self) -> OverlapSplit {
        if self.is_empty() {
            return OverlapSplit { deep: None, shell: Vec::new() };
        }
        let (di, dj, dk) =
            (self.i1 - self.i0, (self.j1 - self.j0) as usize, (self.k1 - self.k0) as usize);
        if di < 2 || dj < 2 || dk < 2 {
            // Too thin for the six-box decomposition to stay disjoint.
            return OverlapSplit { deep: None, shell: vec![*self] };
        }
        let deep = InteriorRange {
            i0: self.i0 + 1,
            i1: self.i1 - 1,
            j0: self.j0 + 1,
            j1: self.j1 - 1,
            k0: self.k0 + 1,
            k1: self.k1 - 1,
        };
        let shell = [
            // Radial wall-adjacent slabs (full horizontal extent).
            InteriorRange { i0: self.i0, i1: self.i0 + 1, ..*self },
            InteriorRange { i0: self.i1 - 1, i1: self.i1, ..*self },
            // θ bands at radially-deep levels.
            InteriorRange { i0: deep.i0, i1: deep.i1, j1: self.j0 + 1, ..*self },
            InteriorRange { i0: deep.i0, i1: deep.i1, j0: self.j1 - 1, ..*self },
            // φ bands at radially-deep, θ-deep levels.
            InteriorRange { i0: deep.i0, i1: deep.i1, j0: deep.j0, j1: deep.j1, k1: self.k0 + 1, ..*self },
            InteriorRange { i0: deep.i0, i1: deep.i1, j0: deep.j0, j1: deep.j1, k0: self.k1 - 1, ..*self },
        ]
        .into_iter()
        .filter(|r| !r.is_empty())
        .collect();
        OverlapSplit { deep: (!deep.is_empty()).then_some(deep), shell }
    }

    /// Split the range into consecutive φ-tiles of width `block` (the
    /// last tile may be narrower). `block = 0` means "no blocking": the
    /// whole range as a single tile. The tiles are disjoint, consecutive
    /// in k, cover `self` exactly, and keep the i/j bounds — the
    /// cache-blocking decomposition the fused kernel sweeps (it iterates
    /// the same tiles without allocating; this method is the checkable
    /// spelling of that loop).
    pub fn phi_blocks(&self, block: usize) -> Vec<InteriorRange> {
        let nk = (self.k1 - self.k0).max(0) as usize;
        if block == 0 || block >= nk {
            return vec![*self];
        }
        let mut out = Vec::with_capacity(nk.div_ceil(block));
        let mut k = self.k0;
        while k < self.k1 {
            let k_next = (k + block as isize).min(self.k1);
            out.push(InteriorRange { k0: k, k1: k_next, ..*self });
            k = k_next;
        }
        out
    }

    /// Split the range into up to `n` consecutive φ-chunks (for pipelining
    /// the deep-interior sweep between communication phases). The chunks
    /// are disjoint, cover `self`, and preserve the (k, j, i) sweep order.
    pub fn chunks_phi(&self, n: usize) -> Vec<InteriorRange> {
        let nk = (self.k1 - self.k0).max(0) as usize;
        let n = n.max(1).min(nk.max(1));
        let mut out = Vec::with_capacity(n);
        let mut k = self.k0;
        for c in 0..n {
            let k_next = self.k0 + ((nk * (c + 1)) / n) as isize;
            out.push(InteriorRange { k0: k, k1: k_next, ..*self });
            k = k_next;
        }
        out
    }
}

/// Result of [`InteriorRange::split_overlap`]: the sync-independent deep
/// interior plus the boundary-shell boxes that complete the tiling.
#[derive(Debug, Clone)]
pub struct OverlapSplit {
    /// Columns/levels whose stencils read nothing a boundary sync writes
    /// (`None` when the range is too thin to have any).
    pub deep: Option<InteriorRange>,
    /// Disjoint boxes covering the rest of the range.
    pub shell: Vec<InteriorRange>,
}

impl OverlapSplit {
    /// All sub-ranges (deep first), for tiling checks.
    pub fn all_ranges(&self) -> Vec<InteriorRange> {
        self.deep.iter().chain(self.shell.iter()).copied().collect()
    }
}

/// Default φ-tile width for the fused sweep's cache blocking.
/// `bench/benches/profile.rs` sweeps the knob and records per-block
/// step times in `BENCH_profile.json` for retuning; on the (noisy,
/// virtualised) CI box the sweep is within run-to-run noise at bench
/// grid sizes, so the default is the smallest band that still reuses a
/// column's θ/φ stencil neighbours — the working set minimiser, which
/// is the right bias for the production shapes where blocking matters.
pub const DEFAULT_PHI_BLOCK: usize = 2;

/// Default radial-extent threshold below which `compute_rhs_partial`
/// falls back from the fused sweep to the single-pass mega-loop: the
/// fused kernel pays per-column setup for each of its
/// [`RHS_PASSES_PER_COLUMN`] passes, which only amortizes over a few
/// radial nodes (the overlapped driver's shell planes are 1–2 deep).
pub const MIN_FUSED_RADIAL_EXTENT: usize = 8;

/// Per-column radial scratch rows for the fused sweep: intermediate
/// fields (B, the current j, ∇p) each pass stores for later passes of
/// the same column. Together 9 radial rows (~2 KB at production nr) —
/// L1-resident by construction.
#[derive(Debug, Clone)]
struct RowBufs {
    b_r: Vec<f64>,
    b_t: Vec<f64>,
    b_p: Vec<f64>,
    j_r: Vec<f64>,
    j_t: Vec<f64>,
    j_p: Vec<f64>,
    gp_r: Vec<f64>,
    gp_t: Vec<f64>,
    gp_p: Vec<f64>,
}

impl RowBufs {
    fn new(nr: usize) -> Self {
        RowBufs {
            b_r: vec![0.0; nr],
            b_t: vec![0.0; nr],
            b_p: vec![0.0; nr],
            j_r: vec![0.0; nr],
            j_t: vec![0.0; nr],
            j_p: vec![0.0; nr],
            gp_r: vec![0.0; nr],
            gp_t: vec![0.0; nr],
            gp_p: vec![0.0; nr],
        }
    }
}

/// Reusable scratch arrays for RHS evaluation (velocity and temperature
/// over the padded tile, radial row buffers for the fused passes), plus
/// the kernel-selection knobs. Everything the RHS path needs is
/// allocated here once — steady state allocates nothing (regression-
/// guarded by `tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct RhsScratch {
    /// Velocity `v = f/ρ` over the padded tile.
    pub v: VectorField,
    /// Temperature `T = p/ρ` over the padded tile.
    pub temp: Array3,
    /// Per-column radial rows for the fused passes.
    rows: RowBufs,
    /// φ-tile width for cache blocking (0 = unblocked single tile).
    pub phi_block: usize,
    /// Run the pre-rewrite reference sweep instead of the fused one.
    /// Same arithmetic per point bit-for-bit; exists so the exactness
    /// harness (and debugging) can diff the two implementations.
    pub use_reference: bool,
    /// Ranges with radial extent below this run the reference mega-loop
    /// even in fused mode (performance dispatch; see
    /// [`compute_rhs_partial`]). `0` forces the fused sweep everywhere —
    /// the exactness tests use that to keep tiny ranges covered.
    pub min_fused_extent: usize,
}

impl RhsScratch {
    /// Allocate scratch for tiles of `shape` (fused kernel, default
    /// φ-block).
    pub fn new(shape: Shape) -> Self {
        RhsScratch {
            v: VectorField::zeros(shape),
            temp: Array3::zeros(shape),
            rows: RowBufs::new(shape.nr),
            phi_block: DEFAULT_PHI_BLOCK,
            use_reference: false,
            min_fused_extent: MIN_FUSED_RADIAL_EXTENT,
        }
    }
}

/// Vector second-derivative bundle at one node: the vector Laplacian and
/// grad-div of a field given its component stencils.
struct VecSecond {
    lap: [f64; 3],
    grad_div: [f64; 3],
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn vec_second(
    qr: &Cols,
    qt: &Cols,
    qp: &Cols,
    i: usize,
    sp: &Spacings,
    g: &ColGeom,
    inv_r: f64,
) -> VecSecond {
    let inv_r2 = inv_r * inv_r;
    let qr_c = qr.c[i];
    let qt_c = qt.c[i];
    let qp_c = qp.c[i];

    let dqr_r = qr.ddr(i, sp);
    let dqr_t = qr.ddt(i, sp);
    let dqr_p = qr.ddp(i, sp);
    let dqt_r = qt.ddr(i, sp);
    let dqt_t = qt.ddt(i, sp);
    let dqt_p = qt.ddp(i, sp);
    let dqp_p = qp.ddp(i, sp);

    let lap_r_scalar = qr.laplacian(i, sp, inv_r, g.inv_sin2, g.cot_t);
    let lap_t_scalar = qt.laplacian(i, sp, inv_r, g.inv_sin2, g.cot_t);
    let lap_p_scalar = qp.laplacian(i, sp, inv_r, g.inv_sin2, g.cot_t);

    let lap = [
        lap_r_scalar - 2.0 * inv_r2 * (qr_c + dqt_t + g.cot_t * qt_c + g.inv_sin * dqp_p),
        lap_t_scalar + 2.0 * inv_r2 * dqr_t
            - inv_r2 * g.inv_sin2 * qt_c
            - 2.0 * inv_r2 * g.cot_t * g.inv_sin * dqp_p,
        lap_p_scalar + 2.0 * inv_r2 * g.inv_sin * dqr_p + 2.0 * inv_r2 * g.cot_t * g.inv_sin * dqt_p
            - inv_r2 * g.inv_sin2 * qp_c,
    ];

    // H = cotθ Qθ + ∂θQθ + (1/sinθ)∂φQφ and its derivatives.
    let h = g.cot_t * qt_c + dqt_t + g.inv_sin * dqp_p;
    let dh_r = g.cot_t * dqt_r + qt.drt(i, sp) + g.inv_sin * qp.drp(i, sp);
    let dh_t = -g.inv_sin2 * qt_c + g.cot_t * dqt_t + qt.d2t(i, sp)
        - g.cot_t * g.inv_sin * dqp_p
        + g.inv_sin * qp.dtp(i, sp);
    let dh_p = g.cot_t * dqt_p + qt.dtp(i, sp) + g.inv_sin * qp.d2p(i, sp);

    let grad_div = [
        qr.d2r(i, sp) + 2.0 * inv_r * dqr_r - 2.0 * inv_r2 * qr_c + inv_r * dh_r - inv_r2 * h,
        inv_r * (qr.drt(i, sp) + 2.0 * inv_r * dqr_t + inv_r * dh_t),
        inv_r * g.inv_sin * (qr.drp(i, sp) + 2.0 * inv_r * dqr_p + inv_r * dh_p),
    ];

    VecSecond { lap, grad_div }
}

/// Evaluate the full MHD right-hand side over `range`, writing into `out`
/// (which is zeroed first, so non-interior nodes carry zero tendency).
///
/// `state` must have valid values on the whole padded region — i.e. halo
/// exchange, overset interpolation and physical boundary conditions have
/// all been applied to it.
#[allow(clippy::too_many_arguments)]
pub fn compute_rhs(
    state: &State,
    metric: &Metric,
    forces: &ForceTables,
    params: &PhysParams,
    range: &InteriorRange,
    scratch: &mut RhsScratch,
    out: &mut State,
    meter: &mut Meters,
) {
    out.fill_zero();
    compute_rhs_partial(state, metric, forces, params, range, scratch, out, meter);
}

/// Evaluate the RHS over `range` **without** zeroing `out` first — the
/// building block for split (deep-interior / boundary-shell) sweeps that
/// accumulate disjoint sub-ranges into one tendency state. The caller
/// zeroes `out` once before the first partial sweep.
///
/// `state` only needs valid values on `range` expanded by the stencil
/// radius (one node in every direction): the subsidiary `v = f/ρ`,
/// `T = p/ρ` fields are recomputed over exactly that expansion, so a
/// deep-interior sweep can run before ghost/frame/wall data arrives.
/// The per-point arithmetic is identical to [`compute_rhs`], so summing
/// partial sweeps over a disjoint tiling of a range is bit-identical to
/// one full sweep over it.
#[allow(clippy::too_many_arguments)]
pub fn compute_rhs_partial(
    state: &State,
    metric: &Metric,
    forces: &ForceTables,
    params: &PhysParams,
    range: &InteriorRange,
    scratch: &mut RhsScratch,
    out: &mut State,
    meter: &mut Meters,
) {
    if range.is_empty() {
        return;
    }
    let t0 = meter.timer();
    let shape = state.shape();

    // v = f/ρ and T = p/ρ over the range plus the stencil radius — in
    // every direction, radial included: a boundary-shell plane only
    // divides the three radial nodes its stencils read, not the whole
    // column (pointwise, so recomputing a node in overlapping partial
    // sweeps yields bit-identical values).
    let (gth, gph) = (shape.gth as isize, shape.gph as isize);
    let j_lo = (range.j0 - 1).max(-gth);
    let j_hi = (range.j1 + 1).min(shape.nth as isize + gth);
    let k_lo = (range.k0 - 1).max(-gph);
    let k_hi = (range.k1 + 1).min(shape.nph as isize + gph);
    let i_lo = range.i0.saturating_sub(1);
    let i_hi = (range.i1 + 1).min(shape.nr);
    for k in k_lo..k_hi {
        for j in j_lo..j_hi {
            let rho = &state.rho.row(j, k)[i_lo..i_hi];
            let prs = &state.press.row(j, k)[i_lo..i_hi];
            let fr = &state.f.r.row(j, k)[i_lo..i_hi];
            let ft = &state.f.t.row(j, k)[i_lo..i_hi];
            let fp = &state.f.p.row(j, k)[i_lo..i_hi];
            let vr = &mut scratch.v.r.row_mut(j, k)[i_lo..i_hi];
            for i in 0..vr.len() {
                vr[i] = fr[i] / rho[i];
            }
            let vt = &mut scratch.v.t.row_mut(j, k)[i_lo..i_hi];
            for i in 0..vt.len() {
                vt[i] = ft[i] / rho[i];
            }
            let vp = &mut scratch.v.p.row_mut(j, k)[i_lo..i_hi];
            for i in 0..vp.len() {
                vp[i] = fp[i] / rho[i];
            }
            let tt = &mut scratch.temp.row_mut(j, k)[i_lo..i_hi];
            for i in 0..tt.len() {
                tt[i] = prs[i] / rho[i];
            }
        }
    }

    // The fused sweep amortizes its per-column pass setup (windowed
    // column views, one loop per pass) over the radial extent; below a
    // few nodes — the overlapped driver's radial shell planes — the
    // single-pass mega-loop is cheaper. Both sweeps are bit-identical,
    // so the dispatch is purely a performance choice.
    if scratch.use_reference || range.i1 - range.i0 < scratch.min_fused_extent {
        reference_sweep(state, metric, forces, params, range, scratch, out);
    } else {
        fused_sweep(state, metric, forces, params, range, scratch, out);
    }

    let points = range.points() as u64;
    let columns = ((range.j1 - range.j0) * (range.k1 - range.k0)) as u64;
    meter.kernel_timed(
        kernel::RHS,
        KernelTally {
            points,
            // The radial sweep is the innermost (vectorized) loop and the
            // fused kernel makes RHS_PASSES_PER_COLUMN of them per (j,k)
            // column; vector_elements counts the same passes per point,
            // so vector_elements/loops is the radial interior extent —
            // the equivalent vector length the ES counters would report,
            // invariant under decomposition and fusion degree. (The
            // reference sweep bills the same model: the tally describes
            // the kernel contract, not which implementation ran.)
            loops: RHS_PASSES_PER_COLUMN * columns,
            vector_elements: RHS_PASSES_PER_COLUMN * points,
            flops: points * RHS_FLOPS_PER_POINT,
            bytes_read: points * RHS_READS_PER_POINT * 8,
            bytes_written: points * RHS_WRITES_PER_POINT * 8,
        },
        t0,
    );
}

/// The pre-rewrite RHS column sweep: one mega-loop per point evaluating
/// every term. Kept (and kept allocation-free) as the bit-exactness
/// reference for the fused kernel — `tests/` and the cross-layout
/// harness in `yy-core` diff the two on every grid they touch.
#[allow(clippy::too_many_arguments)]
fn reference_sweep(
    state: &State,
    metric: &Metric,
    forces: &ForceTables,
    params: &PhysParams,
    range: &InteriorRange,
    scratch: &mut RhsScratch,
    out: &mut State,
) {
    let shape = state.shape();
    let sp = Spacings::new(metric.dr, metric.dth, metric.dph);
    let gamma = params.gamma;
    let gm1 = gamma - 1.0;
    let (mu, kappa, eta) = (params.mu, params.kappa, params.eta);

    // Radial helper tables (precomputed on the metric — the old per-call
    // `r2` allocation was the hot-loop bug this PR fixes).
    let r = &metric.r;
    let inv_r = &metric.inv_r;
    let r2 = &metric.r2;

    for k in range.k0..range.k1 {
        for j in range.j0..range.j1 {
            let g = ColGeom::new(metric, j);
            let p_cols = Cols::new(&state.press, j, k);
            let t_cols = Cols::new(&scratch.temp, j, k);
            let fr_cols = Cols::new(&state.f.r, j, k);
            let ft_cols = Cols::new(&state.f.t, j, k);
            let fp_cols = Cols::new(&state.f.p, j, k);
            let vr_cols = Cols::new(&scratch.v.r, j, k);
            let vt_cols = Cols::new(&scratch.v.t, j, k);
            let vp_cols = Cols::new(&scratch.v.p, j, k);
            let ar_cols = Cols::new(&state.a.r, j, k);
            let at_cols = Cols::new(&state.a.t, j, k);
            let ap_cols = Cols::new(&state.a.p, j, k);
            let rho_row = state.rho.row(j, k);
            let (om_r, om_t, om_p) = forces.omega_at(j, k);

            // Output rows for this column.
            let base = shape.idx(0, j, k);
            macro_rules! out_row {
                ($a:expr) => {
                    &mut $a.data_mut()[base..base + shape.nr]
                };
            }
            // (Split mutable borrows by component through raw indexing.)
            for i in range.i0..range.i1 {
                let ir = inv_r[i];
                let ir2 = ir * ir;
                let rho_c = rho_row[i];
                let p_c = p_cols.c[i];
                let fr_c = fr_cols.c[i];
                let ft_c = ft_cols.c[i];
                let fp_c = fp_cols.c[i];
                let vr_c = vr_cols.c[i];
                let vt_c = vt_cols.c[i];
                let vp_c = vp_cols.c[i];

                // --- continuity -------------------------------------------------
                let div_f = ir2 * (r2[i + 1] * fr_cols.c[i + 1] - r2[i - 1] * fr_cols.c[i - 1])
                    * sp.inv_2dr
                    + ir * g.inv_sin
                        * ((g.sin_s * ft_cols.s[i] - g.sin_n * ft_cols.n[i]) * sp.inv_2dt
                            + (fp_cols.e[i] - fp_cols.w[i]) * sp.inv_2dp);

                // --- magnetic field B = ∇×A -------------------------------------
                let b_r = ir * g.inv_sin
                    * ((g.sin_s * ap_cols.s[i] - g.sin_n * ap_cols.n[i]) * sp.inv_2dt
                        - (at_cols.e[i] - at_cols.w[i]) * sp.inv_2dp);
                let b_t = ir
                    * (g.inv_sin * (ar_cols.e[i] - ar_cols.w[i]) * sp.inv_2dp
                        - (r[i + 1] * ap_cols.c[i + 1] - r[i - 1] * ap_cols.c[i - 1]) * sp.inv_2dr);
                let b_p = ir
                    * ((r[i + 1] * at_cols.c[i + 1] - r[i - 1] * at_cols.c[i - 1]) * sp.inv_2dr
                        - (ar_cols.s[i] - ar_cols.n[i]) * sp.inv_2dt);

                // --- current j = ∇(∇·A) − ∇²A ------------------------------------
                let a2 = vec_second(&ar_cols, &at_cols, &ap_cols, i, &sp, &g, ir);
                let j_r = a2.grad_div[0] - a2.lap[0];
                let j_t = a2.grad_div[1] - a2.lap[1];
                let j_p = a2.grad_div[2] - a2.lap[2];

                // --- momentum: advection ∇·(vf) ----------------------------------
                let flux = |q: &Cols| -> f64 {
                    ir2 * (r2[i + 1] * vr_cols.c[i + 1] * q.c[i + 1]
                        - r2[i - 1] * vr_cols.c[i - 1] * q.c[i - 1])
                        * sp.inv_2dr
                        + ir * g.inv_sin
                            * ((g.sin_s * vt_cols.s[i] * q.s[i] - g.sin_n * vt_cols.n[i] * q.n[i])
                                * sp.inv_2dt
                                + (vp_cols.e[i] * q.e[i] - vp_cols.w[i] * q.w[i]) * sp.inv_2dp)
                };
                let adv_r = flux(&fr_cols) - (ft_c * vt_c + fp_c * vp_c) * ir;
                let adv_t = flux(&ft_cols) + (ft_c * vr_c) * ir - g.cot_t * (fp_c * vp_c) * ir;
                let adv_p =
                    flux(&fp_cols) + (fp_c * vr_c) * ir + g.cot_t * (fp_c * vt_c) * ir;

                // --- pressure gradient -------------------------------------------
                let gp_r = p_cols.ddr(i, &sp);
                let gp_t = ir * p_cols.ddt(i, &sp);
                let gp_p = ir * g.inv_sin * p_cols.ddp(i, &sp);

                // --- Lorentz force j×B -------------------------------------------
                let jxb_r = j_t * b_p - j_p * b_t;
                let jxb_t = j_p * b_r - j_r * b_p;
                let jxb_p = j_r * b_t - j_t * b_r;

                // --- Coriolis 2ρ v×Ω = 2 f×Ω -------------------------------------
                let cor_r = 2.0 * (ft_c * om_p - fp_c * om_t);
                let cor_t = 2.0 * (fp_c * om_r - fr_c * om_p);
                let cor_p = 2.0 * (fr_c * om_t - ft_c * om_r);

                // --- viscous force µ(∇²v + ⅓∇(∇·v)) ------------------------------
                let v2 = vec_second(&vr_cols, &vt_cols, &vp_cols, i, &sp, &g, ir);
                let visc_r = mu * (v2.lap[0] + v2.grad_div[0] / 3.0);
                let visc_t = mu * (v2.lap[1] + v2.grad_div[1] / 3.0);
                let visc_p = mu * (v2.lap[2] + v2.grad_div[2] / 3.0);

                // --- pressure equation pieces ------------------------------------
                let dvr_r = vr_cols.ddr(i, &sp);
                let dvt_t = vt_cols.ddt(i, &sp);
                let dvp_p = vp_cols.ddp(i, &sp);
                let div_v = dvr_r
                    + 2.0 * ir * vr_c
                    + ir * (g.cot_t * vt_c + dvt_t)
                    + ir * g.inv_sin * dvp_p;
                let v_grad_p =
                    vr_c * gp_r + vt_c * gp_t + vp_c * gp_p;
                let lap_t = t_cols.laplacian(i, &sp, ir, g.inv_sin2, g.cot_t);
                let j2 = j_r * j_r + j_t * j_t + j_p * j_p;

                let e_rr = dvr_r;
                let e_tt = ir * dvt_t + vr_c * ir;
                let e_pp = ir * g.inv_sin * dvp_p + vr_c * ir + g.cot_t * vt_c * ir;
                let e_rt = 0.5 * (ir * vr_cols.ddt(i, &sp) + vt_cols.ddr(i, &sp) - vt_c * ir);
                let e_rp =
                    0.5 * (ir * g.inv_sin * vr_cols.ddp(i, &sp) + vp_cols.ddr(i, &sp) - vp_c * ir);
                let e_tp = 0.5
                    * (ir * g.inv_sin * vt_cols.ddp(i, &sp) + ir * vp_cols.ddt(i, &sp)
                        - g.cot_t * vp_c * ir);
                let ee = e_rr * e_rr
                    + e_tt * e_tt
                    + e_pp * e_pp
                    + 2.0 * (e_rt * e_rt + e_rp * e_rp + e_tp * e_tp);
                let phi_visc = 2.0 * mu * (ee - div_v * div_v / 3.0);

                // --- induction: ∂A/∂t = v×B − ηj ----------------------------------
                let vxb_r = vt_c * b_p - vp_c * b_t;
                let vxb_t = vp_c * b_r - vr_c * b_p;
                let vxb_p = vr_c * b_t - vt_c * b_r;

                // --- assemble ----------------------------------------------------
                out_row!(out.rho)[i] = -div_f;
                out_row!(out.f.r)[i] =
                    -adv_r - gp_r + jxb_r + rho_c * forces.grav[i] + cor_r + visc_r;
                out_row!(out.f.t)[i] = -adv_t - gp_t + jxb_t + cor_t + visc_t;
                out_row!(out.f.p)[i] = -adv_p - gp_p + jxb_p + cor_p + visc_p;
                out_row!(out.press)[i] = -v_grad_p - gamma * p_c * div_v
                    + gm1 * (kappa * lap_t + eta * j2 + phi_visc);
                out_row!(out.a.r)[i] = vxb_r - eta * j_r;
                out_row!(out.a.t)[i] = vxb_t - eta * j_t;
                out_row!(out.a.p)[i] = vxb_p - eta * j_p;
            }
        }
    }
}

/// The fused RHS sweep: [`RHS_PASSES_PER_COLUMN`] short stride-1 radial
/// passes per `(θ, φ)` column instead of one register-starved mega-loop
/// per point, over φ-tiles of `scratch.phi_block` columns.
///
/// Every pass loops a local index over equal-length window slices
/// ([`Cols::window`]), the shape LLVM bounds-check-elides and
/// autovectorizes. Intermediate per-column fields (B, j, ∇p, Φ) land in
/// L1-resident radial row buffers; a f64 store/load roundtrip is exact,
/// expression trees are copied from the reference sweep verbatim, and
/// the force/pressure accumulations split the reference's left-
/// associated sums at association boundaries — so the result is
/// **bit-identical** to [`reference_sweep`] (asserted by the tests here
/// and the cross-layout harness in `yy-core`). Columns are independent,
/// which makes the φ-tile traversal reorder bit-exact too.
#[allow(clippy::too_many_arguments)]
fn fused_sweep(
    state: &State,
    metric: &Metric,
    forces: &ForceTables,
    params: &PhysParams,
    range: &InteriorRange,
    scratch: &mut RhsScratch,
    out: &mut State,
) {
    let shape = state.shape();
    let sp = Spacings::new(metric.dr, metric.dth, metric.dph);
    let gamma = params.gamma;
    let gm1 = gamma - 1.0;
    let (mu, kappa, eta) = (params.mu, params.kappa, params.eta);
    let (i0, i1) = (range.i0, range.i1);
    let n = i1 - i0;

    // Radial tables, windowed like the stencil rows (index q+1 ↔ node
    // i0+q) except the center-only ones (index q ↔ node i0+q).
    let r_w = &metric.r[i0 - 1..i1 + 1];
    let r2_w = &metric.r2[i0 - 1..i1 + 1];
    let ir_w = &metric.inv_r[i0..i1];
    let grav_w = &forces.grav[i0..i1];

    let rows = &mut scratch.rows;
    let v = &scratch.v;
    let temp = &scratch.temp;

    // φ-tile blocking: process `phi_block`-wide bands of columns with j
    // innermost, so a band's stencil rows stay cache-hot across the
    // θ sweep (`InteriorRange::phi_blocks` is the checkable spelling of
    // this loop; iterating inline keeps the kernel allocation-free).
    let nk = (range.k1 - range.k0).max(0) as usize;
    let block = (if scratch.phi_block == 0 { nk.max(1) } else { scratch.phi_block }) as isize;
    let mut kb = range.k0;
    while kb < range.k1 {
        let kb1 = (kb + block).min(range.k1);
        for j in range.j0..range.j1 {
            let g = ColGeom::new(metric, j);
            for k in kb..kb1 {
                // Windowed stencil rows: equal-length slices covering
                // [i0−1, i1+1), local index li = q+1 for node i0+q.
                let p_c = Cols::windowed(&state.press, j, k, i0, i1);
                let t_c = Cols::windowed(temp, j, k, i0, i1);
                let fr = Cols::windowed(&state.f.r, j, k, i0, i1);
                let ft = Cols::windowed(&state.f.t, j, k, i0, i1);
                let fp = Cols::windowed(&state.f.p, j, k, i0, i1);
                let vr = Cols::windowed(&v.r, j, k, i0, i1);
                let vt = Cols::windowed(&v.t, j, k, i0, i1);
                let vp = Cols::windowed(&v.p, j, k, i0, i1);
                let ar = Cols::windowed(&state.a.r, j, k, i0, i1);
                let at = Cols::windowed(&state.a.t, j, k, i0, i1);
                let ap = Cols::windowed(&state.a.p, j, k, i0, i1);
                let rho_row = &state.rho.row(j, k)[i0..i1];
                let (om_r, om_t, om_p) = forces.omega_at(j, k);
                let base = shape.idx(0, j, k);

                // Pass 1: continuity, ∂ρ/∂t = −∇·f.
                {
                    let rho_o = &mut out.rho.data_mut()[base + i0..base + i1];
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        let ir2 = ir * ir;
                        let div_f = ir2
                            * (r2_w[li + 1] * fr.c[li + 1] - r2_w[li - 1] * fr.c[li - 1])
                            * sp.inv_2dr
                            + ir * g.inv_sin
                                * ((g.sin_s * ft.s[li] - g.sin_n * ft.n[li]) * sp.inv_2dt
                                    + (fp.e[li] - fp.w[li]) * sp.inv_2dp);
                        rho_o[q] = -div_f;
                    }
                }

                // Pass 2: B = ∇×A into row buffers.
                {
                    let (b_r, b_t, b_p) = (
                        &mut rows.b_r[..n],
                        &mut rows.b_t[..n],
                        &mut rows.b_p[..n],
                    );
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        b_r[q] = ir * g.inv_sin
                            * ((g.sin_s * ap.s[li] - g.sin_n * ap.n[li]) * sp.inv_2dt
                                - (at.e[li] - at.w[li]) * sp.inv_2dp);
                        b_t[q] = ir
                            * (g.inv_sin * (ar.e[li] - ar.w[li]) * sp.inv_2dp
                                - (r_w[li + 1] * ap.c[li + 1] - r_w[li - 1] * ap.c[li - 1])
                                    * sp.inv_2dr);
                        b_p[q] = ir
                            * ((r_w[li + 1] * at.c[li + 1] - r_w[li - 1] * at.c[li - 1])
                                * sp.inv_2dr
                                - (ar.s[li] - ar.n[li]) * sp.inv_2dt);
                    }
                }

                // Pass 3: current j = ∇(∇·A) − ∇²A into row buffers.
                {
                    let (j_r, j_t, j_p) = (
                        &mut rows.j_r[..n],
                        &mut rows.j_t[..n],
                        &mut rows.j_p[..n],
                    );
                    for q in 0..n {
                        let li = q + 1;
                        let a2 = vec_second(&ar, &at, &ap, li, &sp, &g, ir_w[q]);
                        j_r[q] = a2.grad_div[0] - a2.lap[0];
                        j_t[q] = a2.grad_div[1] - a2.lap[1];
                        j_p[q] = a2.grad_div[2] - a2.lap[2];
                    }
                }

                // Pass 4: pressure gradient into row buffers.
                {
                    let (gp_r, gp_t, gp_p) = (
                        &mut rows.gp_r[..n],
                        &mut rows.gp_t[..n],
                        &mut rows.gp_p[..n],
                    );
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        gp_r[q] = p_c.ddr(li, &sp);
                        gp_t[q] = ir * p_c.ddt(li, &sp);
                        gp_p[q] = ir * g.inv_sin * p_c.ddp(li, &sp);
                    }
                }

                // Passes 5–7: advection, one momentum component each —
                // out.f = −∇·(vf). The conservative flux matches the
                // reference's `flux` closure term for term.
                macro_rules! flux {
                    ($qc:expr, $li:expr, $q:expr) => {{
                        let ir = ir_w[$q];
                        let ir2 = ir * ir;
                        ir2 * (r2_w[$li + 1] * vr.c[$li + 1] * $qc.c[$li + 1]
                            - r2_w[$li - 1] * vr.c[$li - 1] * $qc.c[$li - 1])
                            * sp.inv_2dr
                            + ir * g.inv_sin
                                * ((g.sin_s * vt.s[$li] * $qc.s[$li]
                                    - g.sin_n * vt.n[$li] * $qc.n[$li])
                                    * sp.inv_2dt
                                    + (vp.e[$li] * $qc.e[$li] - vp.w[$li] * $qc.w[$li])
                                        * sp.inv_2dp)
                    }};
                }
                {
                    let fr_o = &mut out.f.r.data_mut()[base + i0..base + i1];
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        let adv_r = flux!(fr, li, q)
                            - (ft.c[li] * vt.c[li] + fp.c[li] * vp.c[li]) * ir;
                        fr_o[q] = -adv_r;
                    }
                }
                {
                    let ft_o = &mut out.f.t.data_mut()[base + i0..base + i1];
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        let adv_t = flux!(ft, li, q) + (ft.c[li] * vr.c[li]) * ir
                            - g.cot_t * (fp.c[li] * vp.c[li]) * ir;
                        ft_o[q] = -adv_t;
                    }
                }
                {
                    let fp_o = &mut out.f.p.data_mut()[base + i0..base + i1];
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        let adv_p = flux!(fp, li, q) + (fp.c[li] * vr.c[li]) * ir
                            + g.cot_t * (fp.c[li] * vt.c[li]) * ir;
                        fp_o[q] = -adv_p;
                    }
                }

                // Pass 8: body forces — −∇p, j×B, gravity, Coriolis —
                // accumulated onto −advection in the reference's
                // left-associated order.
                {
                    let fr_o = &mut out.f.r.data_mut()[base + i0..base + i1];
                    let ft_o = &mut out.f.t.data_mut()[base + i0..base + i1];
                    let fp_o = &mut out.f.p.data_mut()[base + i0..base + i1];
                    let (b_r, b_t, b_p) = (&rows.b_r[..n], &rows.b_t[..n], &rows.b_p[..n]);
                    let (j_r, j_t, j_p) = (&rows.j_r[..n], &rows.j_t[..n], &rows.j_p[..n]);
                    let (gp_r, gp_t, gp_p) =
                        (&rows.gp_r[..n], &rows.gp_t[..n], &rows.gp_p[..n]);
                    for q in 0..n {
                        let li = q + 1;
                        let jxb_r = j_t[q] * b_p[q] - j_p[q] * b_t[q];
                        let jxb_t = j_p[q] * b_r[q] - j_r[q] * b_p[q];
                        let jxb_p = j_r[q] * b_t[q] - j_t[q] * b_r[q];
                        let cor_r = 2.0 * (ft.c[li] * om_p - fp.c[li] * om_t);
                        let cor_t = 2.0 * (fp.c[li] * om_r - fr.c[li] * om_p);
                        let cor_p = 2.0 * (fr.c[li] * om_t - ft.c[li] * om_r);
                        fr_o[q] = fr_o[q] - gp_r[q] + jxb_r + rho_row[q] * grav_w[q] + cor_r;
                        ft_o[q] = ft_o[q] - gp_t[q] + jxb_t + cor_t;
                        fp_o[q] = fp_o[q] - gp_p[q] + jxb_p + cor_p;
                    }
                }

                // Pass 9: viscous force µ(∇²v + ⅓∇(∇·v)), the final
                // momentum addend.
                {
                    let fr_o = &mut out.f.r.data_mut()[base + i0..base + i1];
                    let ft_o = &mut out.f.t.data_mut()[base + i0..base + i1];
                    let fp_o = &mut out.f.p.data_mut()[base + i0..base + i1];
                    for q in 0..n {
                        let li = q + 1;
                        let v2 = vec_second(&vr, &vt, &vp, li, &sp, &g, ir_w[q]);
                        fr_o[q] += mu * (v2.lap[0] + v2.grad_div[0] / 3.0);
                        ft_o[q] += mu * (v2.lap[1] + v2.grad_div[1] / 3.0);
                        fp_o[q] += mu * (v2.lap[2] + v2.grad_div[2] / 3.0);
                    }
                }

                // Pass 10: the whole pressure equation in one pass —
                // advection −v·∇p − γp∇·v, viscous heating Φ from the
                // strain tensor, diffusion κ∇²T and Ohmic heating ηj².
                // `div_v` is computed once and shared between the
                // advection and heating terms, exactly as the reference
                // does; the assembled sum keeps the reference's
                // left-associated order, so the merge is bit-exact.
                {
                    let pr_o = &mut out.press.data_mut()[base + i0..base + i1];
                    let (gp_r, gp_t, gp_p) =
                        (&rows.gp_r[..n], &rows.gp_t[..n], &rows.gp_p[..n]);
                    let (j_r, j_t, j_p) = (&rows.j_r[..n], &rows.j_t[..n], &rows.j_p[..n]);
                    for q in 0..n {
                        let li = q + 1;
                        let ir = ir_w[q];
                        let dvr_r = vr.ddr(li, &sp);
                        let dvt_t = vt.ddt(li, &sp);
                        let dvp_p = vp.ddp(li, &sp);
                        let div_v = dvr_r
                            + 2.0 * ir * vr.c[li]
                            + ir * (g.cot_t * vt.c[li] + dvt_t)
                            + ir * g.inv_sin * dvp_p;
                        let v_grad_p =
                            vr.c[li] * gp_r[q] + vt.c[li] * gp_t[q] + vp.c[li] * gp_p[q];
                        let lap_t = t_c.laplacian(li, &sp, ir, g.inv_sin2, g.cot_t);
                        let j2 = j_r[q] * j_r[q] + j_t[q] * j_t[q] + j_p[q] * j_p[q];
                        let e_rr = dvr_r;
                        let e_tt = ir * dvt_t + vr.c[li] * ir;
                        let e_pp =
                            ir * g.inv_sin * dvp_p + vr.c[li] * ir + g.cot_t * vt.c[li] * ir;
                        let e_rt =
                            0.5 * (ir * vr.ddt(li, &sp) + vt.ddr(li, &sp) - vt.c[li] * ir);
                        let e_rp = 0.5
                            * (ir * g.inv_sin * vr.ddp(li, &sp) + vp.ddr(li, &sp)
                                - vp.c[li] * ir);
                        let e_tp = 0.5
                            * (ir * g.inv_sin * vt.ddp(li, &sp) + ir * vp.ddt(li, &sp)
                                - g.cot_t * vp.c[li] * ir);
                        let ee = e_rr * e_rr
                            + e_tt * e_tt
                            + e_pp * e_pp
                            + 2.0 * (e_rt * e_rt + e_rp * e_rp + e_tp * e_tp);
                        let phi_visc = 2.0 * mu * (ee - div_v * div_v / 3.0);
                        pr_o[q] = -v_grad_p - gamma * p_c.c[li] * div_v
                            + gm1 * (kappa * lap_t + eta * j2 + phi_visc);
                    }
                }

                // Pass 11: induction ∂A/∂t = v×B − ηj.
                {
                    let ar_o = &mut out.a.r.data_mut()[base + i0..base + i1];
                    let at_o = &mut out.a.t.data_mut()[base + i0..base + i1];
                    let ap_o = &mut out.a.p.data_mut()[base + i0..base + i1];
                    let (b_r, b_t, b_p) = (&rows.b_r[..n], &rows.b_t[..n], &rows.b_p[..n]);
                    let (j_r, j_t, j_p) = (&rows.j_r[..n], &rows.j_t[..n], &rows.j_p[..n]);
                    for q in 0..n {
                        let li = q + 1;
                        let vxb_r = vt.c[li] * b_p[q] - vp.c[li] * b_t[q];
                        let vxb_t = vp.c[li] * b_r[q] - vr.c[li] * b_p[q];
                        let vxb_p = vr.c[li] * b_t[q] - vt.c[li] * b_r[q];
                        ar_o[q] = vxb_r - eta * j_r[q];
                        at_o[q] = vxb_t - eta * j_t[q];
                        ap_o[q] = vxb_p - eta * j_p[q];
                    }
                }
            }
        }
        kb = kb1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{hydrostatic_profile, initialize, InitOptions};
    use crate::tables::rotation_axis;
    use yy_mesh::{Panel, PatchGrid, PatchSpec};

    fn setup(nth: usize) -> (PatchGrid, Metric, ForceTables, PhysParams) {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(16, nth, 0.35, 1.0));
        let metric = Metric::full(&grid);
        let params = PhysParams::default_laptop();
        let (_, nthg, nphg) = grid.dims();
        let forces = ForceTables::new(
            &metric,
            nthg,
            nphg,
            1,
            params.g0,
            params.omega,
            rotation_axis(Panel::Yin),
        );
        (grid, metric, forces, params)
    }

    /// With f = 0 and A = 0 and the hydrostatic (ρ, p) profile, the RHS
    /// must vanish up to discretization error, and converge away at 2nd
    /// order.
    #[test]
    fn hydrostatic_state_is_a_discrete_equilibrium() {
        let residual = |nth: usize, nr: usize| {
            let grid =
                PatchGrid::new(PatchSpec::equal_spacing(nr, nth, 0.35, 1.0));
            let metric = Metric::full(&grid);
            let params = PhysParams::default_laptop();
            let (_, nthg, nphg) = grid.dims();
            let forces = ForceTables::new(
                &metric,
                nthg,
                nphg,
                1,
                params.g0,
                params.omega,
                rotation_axis(Panel::Yin),
            );
            let mut state = State::zeros(grid.full_shape());
            let opts = InitOptions { perturb_amplitude: 0.0, seed_amplitude: 0.0, seed: 1 };
            initialize(&mut state, &grid, None, &params, &opts, Panel::Yin);
            let range = InteriorRange::full_panel(&grid);
            let mut scratch = RhsScratch::new(grid.full_shape());
            let mut out = State::zeros(grid.full_shape());
            let mut meter = Meters::new();
            compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter);
            // Momentum residual is the interesting one: −∇p + ρg ≈ 0.
            out.f.r.max_abs_owned().max(out.f.t.max_abs_owned()).max(out.f.p.max_abs_owned())
        };
        let e1 = residual(9, 16);
        let e2 = residual(17, 32);
        let rate = (e1 / e2).log2();
        assert!(
            rate > 1.6,
            "hydrostatic residual convergence rate {rate:.2} ({e1:.3e} → {e2:.3e})"
        );
    }

    /// Uniform magnetic field (A = r sinθ φ̂ gives B = 2ẑ): the current j
    /// and hence the Lorentz force and ohmic terms must vanish; A's
    /// tendency must be −ηj ≈ 0 when v = 0.
    #[test]
    fn uniform_field_carries_no_current() {
        let (grid, metric, forces, params) = setup(17);
        let shape = grid.full_shape();
        let mut state = State::zeros(shape);
        // Hydrostatic background for positivity.
        let (rho_prof, p_prof) = hydrostatic_profile(&params, grid.r());
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.rho.set(i, j, k, rho_prof[i]);
                    state.press.set(i, j, k, p_prof[i]);
                    state.a.p.set(i, j, k, grid.r().coord(i) * st);
                }
            }
        }
        let range = InteriorRange::full_panel(&grid);
        let mut scratch = RhsScratch::new(shape);
        let mut out = State::zeros(shape);
        let mut meter = Meters::new();
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter);
        // ∂A/∂t = −ηj must be tiny (j = 0 analytically; the sinθ stencil
        // error is O(h²) ≈ 1e-3 at this resolution).
        let j_resid =
            out.a.r.max_abs_owned().max(out.a.t.max_abs_owned()).max(out.a.p.max_abs_owned());
        assert!(j_resid < 1e-4, "j residual {j_resid:.3e}");
    }

    /// Solid-body rotation v = Ω' r sinθ φ̂ about the polar axis is
    /// rigid: the strain, divergence, and viscous force vanish.
    /// Run with gravity, rotation, and pressure terms disabled so only
    /// the flow terms remain, then check the azimuthal momentum tendency
    /// (advection of solid rotation balances the centrifugal-like terms
    /// only in r and θ; the φ component must vanish identically).
    #[test]
    fn solid_body_rotation_has_no_viscous_force() {
        let (grid, metric, _forces, _) = setup(17);
        let mut params = PhysParams::default_laptop();
        params.omega = 0.0;
        params.g0 = 0.0;
        params.mu = 0.0; // pure advection first: exact zeros expected
        params.kappa = 0.0;
        let (_, nthg, nphg) = grid.dims();
        let forces =
            ForceTables::new(&metric, nthg, nphg, 1, 0.0, 0.0, rotation_axis(Panel::Yin));
        let shape = grid.full_shape();
        let mut state = State::zeros(shape);
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    let r = grid.r().coord(i);
                    state.rho.set(i, j, k, 1.0);
                    state.press.set(i, j, k, 1.0); // uniform p: no pressure force
                    state.f.p.set(i, j, k, 0.1 * r * st);
                }
            }
        }
        let range = InteriorRange::full_panel(&grid);
        let mut scratch = RhsScratch::new(shape);
        let mut out = State::zeros(shape);
        let mut meter = Meters::new();
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter);
        // φ-momentum: ∇·(v f)|_φ for solid rotation is identically zero
        // (no φ-dependence, vr = vθ = 0) — exactly, with µ = 0.
        let fp_resid = out.f.p.max_abs_owned();
        assert!(fp_resid < 1e-12, "φ tendency {fp_resid:.3e}");
        // ∇·v = 0 and Φ = 0 for rigid rotation; T uniform → conduction 0.
        assert!(out.press.max_abs_owned() < 1e-12);
        // ρ tendency: ∇·f = 0 for this field.
        assert!(out.rho.max_abs_owned() < 1e-12);

        // With viscosity on, the viscous force on rigid rotation is zero
        // only up to the O(h²) stencil error on sin θ — check smallness.
        params.mu = 2e-3;
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter);
        let fp_visc = out.f.p.max_abs_owned();
        assert!(fp_visc < 1e-5, "viscous residual on rigid rotation {fp_visc:.3e}");
    }

    /// The flop meter must count exactly points × RHS_FLOPS_PER_POINT.
    #[test]
    fn flop_accounting_matches_range() {
        let (grid, metric, forces, params) = setup(9);
        let shape = grid.full_shape();
        let mut state = State::zeros(shape);
        state.rho.fill(1.0);
        state.press.fill(1.0);
        let range = InteriorRange::full_panel(&grid);
        let mut scratch = RhsScratch::new(shape);
        let mut out = State::zeros(shape);
        let mut meter = Meters::new();
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter);
        assert_eq!(meter.flops(), range.points() as u64 * RHS_FLOPS_PER_POINT);
        assert!(range.points() > 0);
    }

    #[test]
    fn interior_range_for_tile_clips_frame() {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(8, 17, 0.35, 1.0));
        let (_, nth, nph) = grid.dims();
        let d = yy_mesh::Decomp2D::new(2, 2, &grid);
        // Top-left tile touches the j=0 and k=0 frame.
        let t = d.tile(0);
        let r = InteriorRange::for_tile(&grid, &t);
        assert_eq!(r.j0, 1);
        assert_eq!(r.k0, 1);
        assert_eq!(r.j1, t.nth as isize); // interior continues into next tile
        // Bottom-right tile touches the far frames.
        let t3 = d.tile(3);
        let r3 = InteriorRange::for_tile(&grid, &t3);
        assert_eq!(r3.j0, 0);
        assert_eq!(r3.j1 as usize + t3.j0, nth - 1);
        assert_eq!(r3.k1 as usize + t3.k0, nph - 1);
    }

    /// Exhaustively verify that `split_overlap` tiles a range: every node
    /// covered exactly once, deep interior one node inside every face.
    fn assert_exact_tiling(r: &InteriorRange) {
        let split = r.split_overlap();
        let mut seen = std::collections::HashSet::new();
        for sub in split.all_ranges() {
            // Sub-ranges stay inside the parent.
            assert!(sub.i0 >= r.i0 && sub.i1 <= r.i1, "radial overflow in {sub:?} of {r:?}");
            assert!(sub.j0 >= r.j0 && sub.j1 <= r.j1, "θ overflow in {sub:?} of {r:?}");
            assert!(sub.k0 >= r.k0 && sub.k1 <= r.k1, "φ overflow in {sub:?} of {r:?}");
            for k in sub.k0..sub.k1 {
                for j in sub.j0..sub.j1 {
                    for i in sub.i0..sub.i1 {
                        assert!(
                            seen.insert((i, j, k)),
                            "node ({i},{j},{k}) covered twice splitting {r:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(seen.len(), r.points(), "gap in the tiling of {r:?}");
        if let Some(d) = split.deep {
            assert_eq!((d.i0, d.i1), (r.i0 + 1, r.i1 - 1), "deep must clear the wall planes");
            assert_eq!((d.j0, d.j1), (r.j0 + 1, r.j1 - 1), "deep must clear the θ edges");
            assert_eq!((d.k0, d.k1), (r.k0 + 1, r.k1 - 1), "deep must clear the φ edges");
        }
    }

    /// Deep-interior/boundary-shell split must exactly tile asymmetric
    /// ranges, including thin and degenerate ones.
    #[test]
    fn overlap_split_tiles_asymmetric_ranges() {
        let ranges = [
            InteriorRange { i0: 1, i1: 15, j0: 2, j1: 9, k0: 0, k1: 23 },
            InteriorRange { i0: 1, i1: 7, j0: 0, j1: 3, k0: 1, k1: 4 },
            InteriorRange { i0: 2, i1: 4, j0: -1, j1: 1, k0: 0, k1: 9 }, // thin θ
            InteriorRange { i0: 1, i1: 2, j0: 0, j1: 5, k0: 0, k1: 5 },  // single radial level
            InteriorRange { i0: 1, i1: 15, j0: 3, j1: 4, k0: 2, k1: 3 }, // single column
            InteriorRange { i0: 1, i1: 15, j0: 0, j1: 3, k0: 0, k1: 2 }, // thin φ
            InteriorRange { i0: 3, i1: 3, j0: 0, j1: 4, k0: 0, k1: 4 },  // empty
        ];
        for r in &ranges {
            assert_exact_tiling(r);
        }
    }

    /// The same property on real tile ranges from uneven decompositions
    /// and different halo/frame widths.
    #[test]
    fn overlap_split_tiles_decomposed_tiles() {
        for ext in [1, 2, 3] {
            let grid = PatchGrid::new(
                PatchSpec::equal_spacing(10, 17, 0.35, 1.0).with_ext(ext),
            );
            for (pth, pph) in [(1, 1), (2, 3), (3, 2), (1, 4)] {
                let d = yy_mesh::Decomp2D::new(pth, pph, &grid);
                for rank in 0..pth * pph {
                    let t = d.tile(rank);
                    let r = InteriorRange::for_tile(&grid, &t);
                    assert_exact_tiling(&r);
                    // Sanity: the paper-size direction splits unevenly here,
                    // so at least one decomposition exercises asymmetric tiles.
                }
            }
        }
    }

    /// The fused multi-pass sweep must reproduce the pre-rewrite
    /// reference mega-loop **bit-for-bit**, for every φ-block width and
    /// on partial (shell-box) ranges — the tentpole guarantee of the
    /// kernel rewrite.
    #[test]
    fn fused_sweep_matches_reference_bitwise() {
        let (grid, metric, forces, params) = setup(17);
        let shape = grid.full_shape();
        let mut state = State::zeros(shape);
        initialize(
            &mut state,
            &grid,
            None,
            &params,
            &InitOptions { perturb_amplitude: 1e-2, ..InitOptions::default() },
            Panel::Yin,
        );
        // Exercise the magnetic terms too.
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.a.p.set(i, j, k, 0.3 * grid.r().coord(i) * st);
                    state.f.t.set(i, j, k, 0.02 * st);
                }
            }
        }
        let full = InteriorRange::full_panel(&grid);
        let shell_box = InteriorRange { i0: 2, i1: 5, j0: 1, j1: 3, ..full };
        for range in [full, shell_box] {
            let mut scratch = RhsScratch::new(shape);
            scratch.use_reference = true;
            let mut reference = State::zeros(shape);
            let mut meter_ref = Meters::new();
            compute_rhs(
                &state, &metric, &forces, &params, &range, &mut scratch, &mut reference,
                &mut meter_ref,
            );
            for phi_block in [0, 1, 2, 3, 5, DEFAULT_PHI_BLOCK, 64] {
                let mut scratch = RhsScratch::new(shape);
                scratch.phi_block = phi_block;
                // Defeat the small-extent performance dispatch: the
                // shell box must exercise the *fused* sweep here.
                scratch.min_fused_extent = 0;
                let mut fused = State::zeros(shape);
                let mut meter = Meters::new();
                compute_rhs(
                    &state, &metric, &forces, &params, &range, &mut scratch, &mut fused,
                    &mut meter,
                );
                assert_eq!(meter.flops(), meter_ref.flops(), "flop accounting must agree");
                for (a, b) in reference.arrays().into_iter().zip(fused.arrays()) {
                    assert_eq!(
                        a.data(),
                        b.data(),
                        "fused (phi_block={phi_block}) differs from reference on {range:?}"
                    );
                }
            }
        }
    }

    /// Minimal LCG so the tiling property test is seeded without
    /// external dependencies.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Seeded property suite: every block size exactly tiles every
    /// `InteriorRange` — consecutive φ-tiles, i/j bounds preserved, full
    /// coverage, and every tile but the last exactly `block` wide.
    #[test]
    fn phi_blocks_tile_every_range_seeded() {
        let mut rng = Lcg(0x1234_5678_9abc_def0);
        for _ in 0..300 {
            let i0 = 1 + rng.below(6) as usize;
            let i1 = i0 + rng.below(12) as usize;
            let j0 = rng.below(7) as isize - 3;
            let j1 = j0 + rng.below(9) as isize;
            let k0 = rng.below(7) as isize - 3;
            let k1 = k0 + rng.below(25) as isize;
            let r = InteriorRange { i0, i1, j0, j1, k0, k1 };
            let nk = (k1 - k0).max(0) as usize;
            for block in 0..=(nk + 2) {
                let tiles = r.phi_blocks(block);
                assert!(!tiles.is_empty(), "phi_blocks must cover {r:?}");
                let mut k = r.k0;
                let mut pts = 0;
                for (idx, t) in tiles.iter().enumerate() {
                    assert_eq!(t.k0, k, "tiles must be consecutive for {r:?} block {block}");
                    assert_eq!((t.i0, t.i1, t.j0, t.j1), (r.i0, r.i1, r.j0, r.j1));
                    if block > 0 && block < nk && idx + 1 < tiles.len() {
                        assert_eq!(
                            (t.k1 - t.k0) as usize,
                            block,
                            "non-final tile width for {r:?} block {block}"
                        );
                    }
                    k = t.k1;
                    pts += t.points();
                }
                assert_eq!(k, r.k1, "tiles must end at k1 for {r:?} block {block}");
                assert_eq!(pts, r.points(), "tiles must cover {r:?} block {block}");
            }
        }
    }

    /// φ-chunking must partition a range in sweep order.
    #[test]
    fn phi_chunks_partition_the_range() {
        let r = InteriorRange { i0: 1, i1: 9, j0: 0, j1: 7, k0: 2, k1: 13 };
        for n in [1, 2, 3, 5, 11, 50] {
            let chunks = r.chunks_phi(n);
            assert!(chunks.len() <= n.max(1));
            let mut k = r.k0;
            let mut pts = 0;
            for c in &chunks {
                assert_eq!(c.k0, k, "chunks must be consecutive");
                assert!((c.i0, c.i1, c.j0, c.j1) == (r.i0, r.i1, r.j0, r.j1));
                k = c.k1;
                pts += c.points();
            }
            assert_eq!(k, r.k1);
            assert_eq!(pts, r.points());
        }
    }

    /// Summing partial sweeps over the overlap split must reproduce the
    /// full sweep bit-for-bit, including the flop accounting.
    #[test]
    fn split_sweeps_match_full_sweep_bitwise() {
        let (grid, metric, forces, params) = setup(13);
        let shape = grid.full_shape();
        let mut state = State::zeros(shape);
        initialize(
            &mut state,
            &grid,
            None,
            &params,
            &InitOptions { perturb_amplitude: 1e-2, ..InitOptions::default() },
            Panel::Yin,
        );
        let range = InteriorRange::full_panel(&grid);
        let mut scratch = RhsScratch::new(shape);
        let mut full = State::zeros(shape);
        let mut meter_full = Meters::new();
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut full, &mut meter_full);

        let split = range.split_overlap();
        let mut parts = State::zeros(shape);
        let mut meter_parts = Meters::new();
        parts.fill_zero();
        // Deep interior first (possibly φ-chunked), then the shell — the
        // order the overlapped driver uses.
        if let Some(deep) = split.deep {
            for c in deep.chunks_phi(3) {
                compute_rhs_partial(
                    &state, &metric, &forces, &params, &c, &mut scratch, &mut parts,
                    &mut meter_parts,
                );
            }
        }
        for sub in &split.shell {
            compute_rhs_partial(
                &state, &metric, &forces, &params, sub, &mut scratch, &mut parts,
                &mut meter_parts,
            );
        }
        assert_eq!(meter_parts.flops(), meter_full.flops(), "split flop accounting must agree");
        for (a, b) in full.arrays().into_iter().zip(parts.arrays()) {
            assert_eq!(a.data(), b.data(), "split sweep must be bit-identical");
        }
    }

    /// Tendencies outside the interior range must be exactly zero (the
    /// RK4 combine relies on it).
    #[test]
    fn rhs_is_zero_outside_interior() {
        let (grid, metric, forces, params) = setup(9);
        let shape = grid.full_shape();
        let mut state = State::zeros(shape);
        state.rho.fill(1.0);
        state.press.fill(1.0);
        state.f.t.fill(0.01);
        let range = InteriorRange::full_panel(&grid);
        let mut scratch = RhsScratch::new(shape);
        let mut out = State::zeros(shape);
        let mut meter = Meters::new();
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter);
        let (nr, nth, nph) = grid.dims();
        // Radial boundary planes.
        for k in 0..nph as isize {
            for j in 0..nth as isize {
                assert_eq!(out.f.t.at(0, j, k), 0.0);
                assert_eq!(out.f.t.at(nr - 1, j, k), 0.0);
            }
        }
        // Frame columns.
        for k in 0..nph as isize {
            assert_eq!(out.rho.at(2, 0, k), 0.0);
            assert_eq!(out.rho.at(2, nth as isize - 1, k), 0.0);
        }
    }
}
