//! Energy and field diagnostics.
//!
//! §V of the paper follows the time development of the convection and
//! magnetic energies until both saturate. These integrals are the primary
//! scientific output of a run:
//!
//! * kinetic energy   `E_kin = ∫ |f|²/(2ρ) dV`
//! * magnetic energy  `E_mag = ∫ |B|²/2 dV`
//! * thermal energy   `E_th = ∫ p/(γ−1) dV`
//! * total mass       `M = ∫ ρ dV`
//!
//! Integrals run over the tile's owned nodes with trapezoid weights, so
//! parallel partial sums reproduce the serial sum exactly when reduced in
//! rank order. Note the Yin-Yang caveat: summing both panels counts the
//! overlap region (≈ 6 % of the sphere plus the extension) twice. For the
//! time-series *shape* this constant factor is irrelevant;
//! [`overlap_normalization`] exposes the area ratio for callers that want
//! calibrated absolute values.

use crate::params::PhysParams;
use crate::state::State;
use geomath::quadrature::trapezoid_weights;
use yy_mesh::{Metric, PatchGrid, Tile};

/// Scalar diagnostics of one tile (or panel). Combine across tiles/panels
/// by summation of the energies and max of the maxima.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Diagnostics {
    /// Kinetic energy `∫ |f|²/(2ρ) dV`.
    pub kinetic: f64,
    /// Magnetic energy `∫ |B|²/2 dV` (FD-interior region).
    pub magnetic: f64,
    /// Thermal energy `∫ p/(γ−1) dV`.
    pub thermal: f64,
    /// Total mass `∫ ρ dV`.
    pub mass: f64,
    /// Maximum flow speed `max |v|`.
    pub max_speed: f64,
    /// Maximum field strength `max |B|`.
    pub max_b: f64,
}

impl Diagnostics {
    /// Combine with another tile's diagnostics.
    pub fn merged(self, o: Diagnostics) -> Diagnostics {
        Diagnostics {
            kinetic: self.kinetic + o.kinetic,
            magnetic: self.magnetic + o.magnetic,
            thermal: self.thermal + o.thermal,
            mass: self.mass + o.mass,
            max_speed: self.max_speed.max(o.max_speed),
            max_b: self.max_b.max(o.max_b),
        }
    }

    /// Pack into a flat vector for an allreduce (sums first, maxima last).
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.kinetic, self.magnetic, self.thermal, self.mass, self.max_speed, self.max_b]
    }

    /// Unpack from [`Diagnostics::to_vec`] layout.
    pub fn from_slice(v: &[f64]) -> Diagnostics {
        Diagnostics {
            kinetic: v[0],
            magnetic: v[1],
            thermal: v[2],
            mass: v[3],
            max_speed: v[4],
            max_b: v[5],
        }
    }
}

/// Ratio `4π / (2 · patch solid angle)` — multiply two-panel energy sums
/// by this to renormalize the double-counted overlap on average.
pub fn overlap_normalization(grid: &PatchGrid) -> f64 {
    let phi_span = grid.phi().max() - grid.phi().min();
    let cap = grid.theta().min().cos() - grid.theta().max().cos();
    4.0 * std::f64::consts::PI / (2.0 * phi_span * cap)
}

/// Compute the diagnostics of one tile.
///
/// `tile = None` treats `state` as a full panel. B is evaluated with the
/// solver's stencils over the FD interior (frame and wall values excluded
/// from `max_b` and `magnetic`; their measure is O(h) of the total).
pub fn compute_diagnostics(
    state: &State,
    grid: &PatchGrid,
    metric: &Metric,
    tile: Option<&Tile>,
    params: &PhysParams,
    range: &crate::rhs::InteriorRange,
) -> Diagnostics {
    use crate::ops::{ColGeom, Cols, Spacings};
    let shape = state.shape();
    let (j_off, k_off) = tile.map_or((0, 0), |t| (t.j0, t.k0));
    // Global trapezoid weights restricted to this tile.
    let wr_full = trapezoid_weights(grid.r());
    let wt_full = trapezoid_weights(grid.theta());
    let wp_full = trapezoid_weights(grid.phi());
    let sp = Spacings::new(metric.dr, metric.dth, metric.dph);
    let r = &metric.r;
    let gm1 = params.gamma - 1.0;

    let mut d = Diagnostics::default();
    for k in 0..shape.nph as isize {
        let wk = wp_full[(k + k_off as isize) as usize];
        for j in 0..shape.nth as isize {
            let wj = wt_full[(j + j_off as isize) as usize] * metric.sin_t(j);
            let g = ColGeom::new(metric, j);
            let rho = state.rho.row(j, k);
            let prs = state.press.row(j, k);
            let fr = state.f.r.row(j, k);
            let ft = state.f.t.row(j, k);
            let fp = state.f.p.row(j, k);
            let ar = Cols::new(&state.a.r, j, k);
            let at = Cols::new(&state.a.t, j, k);
            let ap = Cols::new(&state.a.p, j, k);
            let in_b_range =
                j >= range.j0 && j < range.j1 && k >= range.k0 && k < range.k1;
            for i in 0..shape.nr {
                let w = wr_full[i] * r[i] * r[i] * wj * wk;
                let f2 = fr[i] * fr[i] + ft[i] * ft[i] + fp[i] * fp[i];
                d.kinetic += w * 0.5 * f2 / rho[i];
                d.thermal += w * prs[i] / gm1;
                d.mass += w * rho[i];
                d.max_speed = d.max_speed.max((f2 / (rho[i] * rho[i])).sqrt());
                if in_b_range && i >= range.i0 && i < range.i1 {
                    let ir = metric.inv_r[i];
                    let b_r = ir * g.inv_sin
                        * ((g.sin_s * ap.s[i] - g.sin_n * ap.n[i]) * sp.inv_2dt
                            - (at.e[i] - at.w[i]) * sp.inv_2dp);
                    let b_t = ir
                        * (g.inv_sin * (ar.e[i] - ar.w[i]) * sp.inv_2dp
                            - (r[i + 1] * ap.c[i + 1] - r[i - 1] * ap.c[i - 1]) * sp.inv_2dr);
                    let b_p = ir
                        * ((r[i + 1] * at.c[i + 1] - r[i - 1] * at.c[i - 1]) * sp.inv_2dr
                            - (ar.s[i] - ar.n[i]) * sp.inv_2dt);
                    let b2 = b_r * b_r + b_t * b_t + b_p * b_p;
                    d.magnetic += w * 0.5 * b2;
                    d.max_b = d.max_b.max(b2.sqrt());
                }
            }
        }
    }
    d
}

/// Diagnostics of a full panel with per-column overlap-deduplication
/// weights (`yy_mesh::dedup_column_weights`): summing the result for both
/// panels counts every region of the shell exactly once, giving
/// *physically calibrated* energy/mass integrals rather than
/// overlap-double-counted ones. Serial-analysis utility (per-tile
/// decomposed variants would need the weights sliced per tile).
pub fn compute_diagnostics_dedup(
    state: &State,
    grid: &PatchGrid,
    metric: &Metric,
    params: &PhysParams,
    range: &crate::rhs::InteriorRange,
    weights: &[f64],
) -> Diagnostics {
    let shape = state.shape();
    let (_, nth, nph) = grid.dims();
    assert_eq!(shape.nth, nth, "dedup diagnostics operate on full panels");
    assert_eq!(weights.len(), nth * nph, "one weight per column");
    let wr = trapezoid_weights(grid.r());
    let wt = trapezoid_weights(grid.theta());
    let wp = trapezoid_weights(grid.phi());
    let gm1 = params.gamma - 1.0;
    let mut d = Diagnostics::default();
    let _ = range;
    for k in 0..shape.nph as isize {
        for j in 0..shape.nth as isize {
            let wdedup = weights[j as usize * nph + k as usize];
            let wjk = wdedup * wt[j as usize] * metric.sin_t(j) * wp[k as usize];
            let rho = state.rho.row(j, k);
            let prs = state.press.row(j, k);
            let fr = state.f.r.row(j, k);
            let ft = state.f.t.row(j, k);
            let fp = state.f.p.row(j, k);
            for i in 0..shape.nr {
                let w = wr[i] * metric.r[i] * metric.r[i] * wjk;
                let f2 = fr[i] * fr[i] + ft[i] * ft[i] + fp[i] * fp[i];
                d.kinetic += w * 0.5 * f2 / rho[i];
                d.thermal += w * prs[i] / gm1;
                d.mass += w * rho[i];
                d.max_speed = d.max_speed.max((f2 / (rho[i] * rho[i])).sqrt());
            }
        }
    }
    d
}

/// Volume integral of the axial (global-ẑ) magnetic field component,
/// `∫ B·ẑ dV`, over this tile's share of the FD interior.
///
/// This is the dipole-aligned field measure the geodynamo literature
/// tracks: its sign identifies the dipole polarity, and its reversals are
/// the "flip-flop transitions" the paper's earlier work (refs. [5], [11],
/// [13]) studied. `axis` is the global polar axis expressed in the
/// panel's local Cartesian frame (`yy_mhd::tables::rotation_axis`).
pub fn axial_field_moment(
    state: &State,
    grid: &PatchGrid,
    metric: &Metric,
    tile: Option<&Tile>,
    axis: geomath::Vec3,
    range: &crate::rhs::InteriorRange,
) -> f64 {
    use crate::ops::{ColGeom, Cols, Spacings};
    use geomath::spherical::SphericalBasis;
    let (j_off, k_off) = tile.map_or((0, 0), |t| (t.j0, t.k0));
    let wr = trapezoid_weights(grid.r());
    let wt = trapezoid_weights(grid.theta());
    let wp = trapezoid_weights(grid.phi());
    let sp = Spacings::new(metric.dr, metric.dth, metric.dph);
    let r = &metric.r;
    let mut total = 0.0;
    for k in range.k0..range.k1 {
        let wk = wp[(k + k_off as isize) as usize];
        for j in range.j0..range.j1 {
            let wj = wt[(j + j_off as isize) as usize] * metric.sin_t(j);
            let g = ColGeom::new(metric, j);
            let ar = Cols::new(&state.a.r, j, k);
            let at = Cols::new(&state.a.t, j, k);
            let ap = Cols::new(&state.a.p, j, k);
            let basis = SphericalBasis::at(metric.theta(j), metric.phi(k));
            let (ax_r, ax_t, ax_p) = basis.from_cartesian(axis);
            for i in range.i0..range.i1 {
                let ir = metric.inv_r[i];
                let b_r = ir * g.inv_sin
                    * ((g.sin_s * ap.s[i] - g.sin_n * ap.n[i]) * sp.inv_2dt
                        - (at.e[i] - at.w[i]) * sp.inv_2dp);
                let b_t = ir
                    * (g.inv_sin * (ar.e[i] - ar.w[i]) * sp.inv_2dp
                        - (r[i + 1] * ap.c[i + 1] - r[i - 1] * ap.c[i - 1]) * sp.inv_2dr);
                let b_p = ir
                    * ((r[i + 1] * at.c[i + 1] - r[i - 1] * at.c[i - 1]) * sp.inv_2dr
                        - (ar.s[i] - ar.n[i]) * sp.inv_2dt);
                let w = wr[i] * r[i] * r[i] * wj * wk;
                total += w * (b_r * ax_r + b_t * ax_t + b_p * ax_p);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{initialize, InitOptions};
    use crate::rhs::InteriorRange;
    use geomath::approx_eq;
    use yy_mesh::{Decomp2D, Panel, PatchSpec};

    fn setup() -> (PatchGrid, Metric, State, PhysParams) {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(12, 13, 0.35, 1.0));
        let metric = Metric::full(&grid);
        let params = PhysParams::default_laptop();
        let mut state = State::zeros(grid.full_shape());
        initialize(&mut state, &grid, None, &params, &InitOptions::default(), Panel::Yin);
        (grid, metric, state, params)
    }

    #[test]
    fn static_state_has_no_kinetic_or_magnetic_energy_to_leading_order() {
        let (grid, metric, state, params) = setup();
        let range = InteriorRange::full_panel(&grid);
        let d = compute_diagnostics(&state, &grid, &metric, None, &params, &range);
        assert_eq!(d.kinetic, 0.0);
        assert!(d.magnetic < 1e-6, "seed magnetic energy should be tiny: {}", d.magnetic);
        assert!(d.thermal > 0.0);
        assert!(d.mass > 0.0);
        assert_eq!(d.max_speed, 0.0);
    }

    #[test]
    fn kinetic_energy_of_uniform_flow_matches_half_mv2() {
        let (grid, metric, mut state, params) = setup();
        state.f.p.fill(0.0);
        // Uniform vφ = 0.3 with ρ from the profile: f = ρ·0.3 ⇒
        // E_kin = ∫ ρ v²/2 = 0.045 ∫ρ = 0.045 · mass.
        let shape = state.shape();
        for k in 0..shape.nph as isize {
            for j in 0..shape.nth as isize {
                for i in 0..shape.nr {
                    let rho = state.rho.at(i, j, k);
                    state.f.p.set(i, j, k, rho * 0.3);
                }
            }
        }
        let range = InteriorRange::full_panel(&grid);
        let d = compute_diagnostics(&state, &grid, &metric, None, &params, &range);
        assert!(approx_eq(d.kinetic, 0.5 * 0.09 * d.mass, 1e-10));
        assert!(approx_eq(d.max_speed, 0.3, 1e-12));
    }

    #[test]
    fn uniform_b_magnetic_energy_density_is_half_b2() {
        let (grid, metric, mut state, params) = setup();
        // A = r sinθ φ̂ → B = 2ẑ, |B|² = 4, density 2.
        let shape = state.shape();
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.a.p.set(i, j, k, grid.r().coord(i) * st);
                }
            }
        }
        let range = InteriorRange::full_panel(&grid);
        let d = compute_diagnostics(&state, &grid, &metric, None, &params, &range);
        assert!(approx_eq(d.max_b, 2.0, 1e-3), "max_b {}", d.max_b);
        // Energy = 2 × (measure of the FD-interior region over which B is
        // accumulated); build that measure from the same weights.
        let wr = trapezoid_weights(grid.r());
        let wt = trapezoid_weights(grid.theta());
        let wp = trapezoid_weights(grid.phi());
        let mut vol = 0.0;
        for k in range.k0..range.k1 {
            for j in range.j0..range.j1 {
                let wjk = wt[j as usize] * metric.sin_t(j) * wp[k as usize];
                for i in range.i0..range.i1 {
                    vol += wr[i] * metric.r[i] * metric.r[i] * wjk;
                }
            }
        }
        assert!(
            (d.magnetic / (2.0 * vol) - 1.0).abs() < 1e-2,
            "magnetic {} vs 2·vol {}",
            d.magnetic,
            2.0 * vol
        );
    }

    #[test]
    fn tile_sums_reproduce_full_panel_sums() {
        let (grid, metric, state, params) = setup();
        let full_range = InteriorRange::full_panel(&grid);
        let full = compute_diagnostics(&state, &grid, &metric, None, &params, &full_range);
        let d = Decomp2D::new(2, 2, &grid);
        let mut merged = Diagnostics::default();
        for rank in 0..4 {
            let t = d.tile(rank);
            let mut local = State::zeros(t.shape(&grid));
            initialize(&mut local, &grid, Some(&t), &params, &InitOptions::default(), Panel::Yin);
            // Fill tile ghosts from the full state so B stencils match.
            let (gth, gph) = (1_isize, 1);
            for k in -gph..(t.nph as isize + gph) {
                for j in -gth..(t.nth as isize + gth) {
                    let gj = j + t.j0 as isize;
                    let gk = k + t.k0 as isize;
                    if gj < 0
                        || gj >= grid.dims().1 as isize
                        || gk < 0
                        || gk >= grid.dims().2 as isize
                    {
                        continue;
                    }
                    for i in 0..12 {
                        for (dst, src) in
                            local.arrays_mut().into_iter().zip(state.arrays().into_iter())
                        {
                            dst.set(i, j, k, src.at(i, gj, gk));
                        }
                    }
                }
            }
            let tm = Metric::new(&grid, &t);
            let range = InteriorRange::for_tile(&grid, &t);
            merged = merged.merged(compute_diagnostics(
                &local, &grid, &tm, Some(&t), &params, &range,
            ));
        }
        assert!(approx_eq(merged.kinetic, full.kinetic, 1e-12));
        assert!(approx_eq(merged.thermal, full.thermal, 1e-12));
        assert!(approx_eq(merged.mass, full.mass, 1e-12));
        assert!(approx_eq(merged.magnetic, full.magnetic, 1e-10));
        assert!(approx_eq(merged.max_b, full.max_b, 1e-12));
    }

    #[test]
    fn vec_round_trip() {
        let d = Diagnostics {
            kinetic: 1.0,
            magnetic: 2.0,
            thermal: 3.0,
            mass: 4.0,
            max_speed: 5.0,
            max_b: 6.0,
        };
        assert_eq!(Diagnostics::from_slice(&d.to_vec()), d);
    }

    #[test]
    fn axial_moment_of_uniform_field_is_2_vol() {
        // A = r sinθ φ̂ → B = 2ẑ (global), so ∫B·ẑ over the measured
        // region is 2 × that region's volume; flipping A's sign flips
        // the polarity — the reversal diagnostic.
        let (grid, metric, mut state, _params) = setup();
        let shape = state.shape();
        // Wipe the random seed field first: A must be exactly the uniform
        // field's potential.
        state.a.r.fill(0.0);
        state.a.t.fill(0.0);
        state.a.p.fill(0.0);
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.a.p.set(i, j, k, grid.r().coord(i) * st);
                }
            }
        }
        let range = InteriorRange::full_panel(&grid);
        let axis = geomath::Vec3::new(0.0, 0.0, 1.0); // Yin frame
        let m = axial_field_moment(&state, &grid, &metric, None, axis, &range);
        // Region volume from the same weights.
        let wr = trapezoid_weights(grid.r());
        let wt = trapezoid_weights(grid.theta());
        let wp = trapezoid_weights(grid.phi());
        let mut vol = 0.0;
        for k in range.k0..range.k1 {
            for j in range.j0..range.j1 {
                for i in range.i0..range.i1 {
                    vol += wr[i]
                        * metric.r[i]
                        * metric.r[i]
                        * wt[j as usize]
                        * metric.sin_t(j)
                        * wp[k as usize];
                }
            }
        }
        assert!(approx_eq(m, 2.0 * vol, 1e-2), "moment {m} vs 2·vol {}", 2.0 * vol);
        // Polarity flip.
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.a.p.set(i, j, k, -grid.r().coord(i) * st);
                }
            }
        }
        let m2 = axial_field_moment(&state, &grid, &metric, None, axis, &range);
        assert!(approx_eq(m2, -m, 1e-10));
    }

    #[test]
    fn axial_moment_is_frame_independent() {
        // The same physical uniform field B = 2ẑ_global seen from the
        // Yang panel (A in Yang-local components) must give the same
        // moment when the Yang axis table is used.
        use crate::tables::rotation_axis;
        use geomath::spherical::SphericalBasis;
        let (grid, metric, mut state, _params) = setup();
        let shape = state.shape();
        state.a.r.fill(0.0);
        state.a.t.fill(0.0);
        state.a.p.fill(0.0);
        let axis = rotation_axis(Panel::Yang); // global ẑ in Yang frame
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let theta = grid.theta().coord_signed(j);
                let phi = grid.phi().coord_signed(k);
                let basis = SphericalBasis::at(theta, phi);
                for i in 0..shape.nr {
                    // A = axis × x is the vector potential of a uniform
                    // 2·axis field.
                    let pos = geomath::SphericalPoint::new(grid.r().coord(i), theta, phi)
                        .to_cartesian();
                    let a = axis.cross(pos);
                    let (arr, att, app) = basis.from_cartesian(a);
                    state.a.r.set(i, j, k, arr);
                    state.a.t.set(i, j, k, att);
                    state.a.p.set(i, j, k, app);
                }
            }
        }
        let range = InteriorRange::full_panel(&grid);
        let m_yang = axial_field_moment(&state, &grid, &metric, None, axis, &range);
        // Compare against the Yin-frame construction (previous test's
        // field): both describe B = 2ẑ_global over an identical region.
        let mut yin_state = State::zeros(shape);
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    yin_state.a.p.set(i, j, k, grid.r().coord(i) * st);
                }
            }
        }
        let m_yin = axial_field_moment(
            &yin_state,
            &grid,
            &metric,
            None,
            geomath::Vec3::new(0.0, 0.0, 1.0),
            &range,
        );
        // The two constructions discretize the same field with different
        // component layouts, so they agree to stencil error, not exactly.
        assert!(approx_eq(m_yang, m_yin, 1e-3), "yang {m_yang} vs yin {m_yin}");
    }

    #[test]
    fn overlap_normalization_is_slightly_below_one() {
        let (grid, ..) = setup();
        let f = overlap_normalization(&grid);
        // Two panels over-cover the sphere, so the factor is < 1; at this
        // coarse resolution the extension inflates coverage to ≈ 1.44×.
        assert!(f < 1.0 && f > 0.5, "normalization {f}");
    }
}
