//! Precomputed force tables: gravity and the rotation vector.
//!
//! Gravity is central (`g = −g0/r² r̂`), so it is a single radial array.
//!
//! The frame rotation Ω is a *fixed Cartesian vector* (the geographic
//! polar axis). In the Yin panel's coordinates that axis is ẑ, but in the
//! Yang panel's coordinates it is M·ẑ = ŷ — the Coriolis term is the one
//! place where the two panels are *not* described by identical code paths
//! unless the axis is kept general. We therefore precompute the spherical
//! components of Ω at every (θ, φ) column of the tile for an arbitrary
//! Cartesian axis; the same kernel then serves both panels.

use geomath::spherical::SphericalBasis;
use geomath::Vec3;
use yy_mesh::{Metric, Panel};

/// Per-tile force tables.
#[derive(Debug, Clone)]
pub struct ForceTables {
    /// `g(r) = −g0 / r²` (signed radial component), indexed by radial node.
    pub grav: Vec<f64>,
    /// Spherical components of Ω at each padded (θ, φ) column,
    /// flattened as `idx = (k + halo) * nth_pad + (j + halo)`.
    om_r: Vec<f64>,
    om_t: Vec<f64>,
    om_p: Vec<f64>,
    halo: usize,
    nth_pad: usize,
}

/// The rotation axis expressed in a panel's local Cartesian frame.
///
/// Yin: ẑ. Yang: the Yin↔Yang map sends ẑ to ŷ.
pub fn rotation_axis(panel: Panel) -> Vec3 {
    match panel {
        Panel::Yin => Vec3::new(0.0, 0.0, 1.0),
        Panel::Yang => geomath::yinyang::yinyang_cartesian(Vec3::new(0.0, 0.0, 1.0)),
    }
}

impl ForceTables {
    /// Build tables for a tile with metric `m`, gravity strength `g0`,
    /// rotation rate `omega` about the panel-local `axis`.
    pub fn new(m: &Metric, nth: usize, nph: usize, halo: usize, g0: f64, omega: f64, axis: Vec3) -> Self {
        let grav = m.r.iter().map(|&r| -g0 / (r * r)).collect();
        let nth_pad = nth + 2 * halo;
        let nph_pad = nph + 2 * halo;
        let omega_cart = axis.normalized() * omega;
        let mut om_r = vec![0.0; nth_pad * nph_pad];
        let mut om_t = vec![0.0; nth_pad * nph_pad];
        let mut om_p = vec![0.0; nth_pad * nph_pad];
        let h = halo as isize;
        for k in -h..(nph as isize + h) {
            for j in -h..(nth as isize + h) {
                let basis = SphericalBasis::at(m.theta(j), m.phi(k));
                let (orr, ot, op) = basis.from_cartesian(omega_cart);
                let idx = ((k + h) as usize) * nth_pad + (j + h) as usize;
                om_r[idx] = orr;
                om_t[idx] = ot;
                om_p[idx] = op;
            }
        }
        ForceTables { grav, om_r, om_t, om_p, halo, nth_pad }
    }

    #[inline]
    fn idx(&self, j: isize, k: isize) -> usize {
        let h = self.halo as isize;
        ((k + h) as usize) * self.nth_pad + (j + h) as usize
    }

    /// Spherical components `(Ω_r, Ω_θ, Ω_φ)` at column `(j, k)`.
    #[inline]
    pub fn omega_at(&self, j: isize, k: isize) -> (f64, f64, f64) {
        let idx = self.idx(j, k);
        (self.om_r[idx], self.om_t[idx], self.om_p[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomath::approx_eq;
    use yy_mesh::{PatchGrid, PatchSpec, Tile};

    fn setup(panel: Panel) -> (Metric, ForceTables, PatchGrid) {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(6, 13, 0.35, 1.0));
        let m = Metric::full(&grid);
        let (_, nth, nph) = grid.dims();
        let t = ForceTables::new(&m, nth, nph, 1, 2.0, 3.0, rotation_axis(panel));
        (m, t, grid)
    }

    #[test]
    fn gravity_follows_inverse_square() {
        let (m, t, _) = setup(Panel::Yin);
        for (i, &r) in m.r.iter().enumerate() {
            assert!(approx_eq(t.grav[i], -2.0 / (r * r), 1e-14));
        }
        // Inward everywhere, stronger at the inner wall.
        assert!(t.grav[0] < t.grav.last().copied().unwrap());
        assert!(t.grav.iter().all(|&g| g < 0.0));
    }

    #[test]
    fn yin_omega_components_are_analytic() {
        // Axis ẑ: Ω_r = Ω cos θ, Ω_θ = −Ω sin θ, Ω_φ = 0.
        let (m, t, grid) = setup(Panel::Yin);
        let (_, nth, nph) = grid.dims();
        for j in -1..(nth as isize + 1) {
            for k in -1..(nph as isize + 1) {
                let (orr, ot, op) = t.omega_at(j, k);
                assert!(approx_eq(orr, 3.0 * m.cos_t(j), 1e-12));
                assert!(approx_eq(ot, -3.0 * m.sin_t(j), 1e-12));
                assert!(approx_eq(op, 0.0, 1e-12));
            }
        }
    }

    #[test]
    fn yang_axis_is_y() {
        let a = rotation_axis(Panel::Yang);
        assert!(approx_eq(a.x, 0.0, 1e-15));
        assert!(approx_eq(a.y, 1.0, 1e-15));
        assert!(approx_eq(a.z, 0.0, 1e-15));
    }

    #[test]
    fn omega_magnitude_is_preserved_everywhere() {
        for panel in [Panel::Yin, Panel::Yang] {
            let (_, t, grid) = setup(panel);
            let (_, nth, nph) = grid.dims();
            for j in 0..nth as isize {
                for k in 0..nph as isize {
                    let (orr, ot, op) = t.omega_at(j, k);
                    let mag = (orr * orr + ot * ot + op * op).sqrt();
                    assert!(approx_eq(mag, 3.0, 1e-12));
                }
            }
        }
    }

    #[test]
    fn yin_and_yang_describe_the_same_physical_rotation() {
        // At a physical point P seen by both panels, transforming Yang's
        // Ω components into the Yin basis must give Yin's Ω components.
        let map = geomath::YinYangMap::new();
        let grid = PatchGrid::new(PatchSpec::equal_spacing(6, 13, 0.35, 1.0));
        let m = Metric::full(&grid);
        let (_, nth, nph) = grid.dims();
        let yin = ForceTables::new(&m, nth, nph, 1, 1.0, 3.0, rotation_axis(Panel::Yin));
        // Pick a Yang grid column, compute its Yin-coordinates image, and
        // compare the transformed vector against the Yin analytic form.
        let yang = ForceTables::new(&m, nth, nph, 1, 1.0, 3.0, rotation_axis(Panel::Yang));
        let _ = yin;
        for &(j, k) in &[(2_isize, 3_isize), (5, 10), (8, 20)] {
            let p = geomath::SphericalPoint::new(1.0, m.theta(j), m.phi(k));
            let (or_e, ot_e, op_e) = yang.omega_at(j, k);
            let (or_n, ot_n, op_n) = map.transform_vector(p, or_e, ot_e, op_e);
            let q = map.transform_point(p);
            // Analytic Yin components at the image point.
            assert!(approx_eq(or_n, 3.0 * q.theta.cos(), 1e-11));
            assert!(approx_eq(ot_n, -3.0 * q.theta.sin(), 1e-11));
            assert!(approx_eq(op_n, 0.0, 1e-11));
        }
    }

    #[test]
    fn tile_tables_match_full_tables() {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(6, 13, 0.35, 1.0));
        let (_, nth, nph) = grid.dims();
        let full_m = Metric::full(&grid);
        let full = ForceTables::new(&full_m, nth, nph, 1, 1.0, 2.0, rotation_axis(Panel::Yin));
        let tile = Tile { rank: 0, cth: 0, cph: 0, j0: 4, nth: 6, k0: 10, nph: 8 };
        let tm = Metric::new(&grid, &tile);
        let tt = ForceTables::new(&tm, tile.nth, tile.nph, 1, 1.0, 2.0, rotation_axis(Panel::Yin));
        for j in -1..(tile.nth as isize + 1) {
            for k in -1..(tile.nph as isize + 1) {
                let a = tt.omega_at(j, k);
                let b = full.omega_at(j + tile.j0 as isize, k + tile.k0 as isize);
                assert!(approx_eq(a.0, b.0, 1e-13));
                assert!(approx_eq(a.1, b.1, 1e-13));
                assert!(approx_eq(a.2, b.2, 1e-13));
            }
        }
    }
}
