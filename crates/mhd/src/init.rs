//! Initial conditions.
//!
//! The paper starts from a motionless conductive state, imposes a random
//! temperature perturbation, and plants an "infinitesimally small, random
//! seed of the magnetic field". We do the same:
//!
//! * temperature profile: the conductive solution `T(r) = a + b/r` of
//!   `∇²T = 0` with `T(ri) = t_inner`, `T(ro) = 1`;
//! * density/pressure: the hydrostatic balance `dp/dr = −ρ g0/r²` with
//!   `p = ρT`, integrated radially by RK4 from `ρ(ro) = 1` — so the
//!   unperturbed state is a *discrete near-equilibrium* and the simulation
//!   does not ring with spurious acoustics at start-up;
//! * pressure perturbation: node-keyed deterministic noise (identical for
//!   every domain decomposition);
//! * magnetic seed: node-keyed noise in A, zeroed at the walls.

use crate::params::PhysParams;
use crate::state::State;
use geomath::rk4::{rk4_step, Rk4Work};
use geomath::rng::{node_key, node_noise};
use geomath::Grid1D;
use yy_mesh::{Panel, PatchGrid, Tile};

/// The conductive temperature profile `T(r) = a + b/r`.
pub fn conductive_temperature(params: &PhysParams, r: f64) -> f64 {
    let b = (params.t_inner - 1.0) / (1.0 / params.ri - 1.0);
    let a = 1.0 - b;
    a + b / r
}

/// Hydrostatic `(ρ(r), p(r))` on the radial grid, integrating
/// `d(ln p)/dr = −g0 / (T(r) r²)` inward from `p(ro) = T(ro) = 1` with
/// one RK4 step per grid interval (the profile is smooth; RK4 over ~10²
/// nodes is far below the PDE discretization error).
pub fn hydrostatic_profile(params: &PhysParams, r_grid: &Grid1D) -> (Vec<f64>, Vec<f64>) {
    let nr = r_grid.len();
    let mut p: Vec<f64> = vec![0.0; nr];
    let mut rho = vec![0.0; nr];
    p[nr - 1] = 1.0; // ρ(ro) = 1, T(ro) = 1
    let mut work = Rk4Work::new(1);
    let mut y = [p[nr - 1].ln()];
    for i in (0..nr - 1).rev() {
        let r_hi = r_grid.coord(i + 1);
        let r_lo = r_grid.coord(i);
        rk4_step(r_hi, r_lo - r_hi, &mut y, &mut work, |r, _, dy| {
            dy[0] = -params.g0 / (conductive_temperature(params, r) * r * r);
        });
        p[i] = y[0].exp();
    }
    for i in 0..nr {
        rho[i] = p[i] / conductive_temperature(params, r_grid.coord(i));
    }
    (rho, p)
}

/// Perturbation controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitOptions {
    /// Relative pressure (temperature) perturbation amplitude.
    pub perturb_amplitude: f64,
    /// Magnetic seed amplitude (absolute, in units where B ~ O(1) is a
    /// saturated dynamo).
    pub seed_amplitude: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for InitOptions {
    fn default() -> Self {
        InitOptions { perturb_amplitude: 1e-3, seed_amplitude: 1e-5, seed: 20040415 }
    }
}

/// RNG stream ids for [`geomath::rng::node_noise`].
const STREAM_PRESSURE: u64 = 1;
const STREAM_A: u64 = 2; // streams 2, 3, 4 for the three components

/// Fill `state` with the initial condition. `tile = None` initializes a
/// full panel (serial); `Some(tile)` a tile of a decomposed panel.
/// Owned values depend only on *global* node indices, so every
/// decomposition produces the same physical state.
pub fn initialize(
    state: &mut State,
    grid: &PatchGrid,
    tile: Option<&Tile>,
    params: &PhysParams,
    opts: &InitOptions,
    panel: Panel,
) {
    params.validate();
    let shape = state.shape();
    let (j_off, k_off) = tile.map_or((0, 0), |t| (t.j0, t.k0));
    let (rho_prof, p_prof) = hydrostatic_profile(params, grid.r());
    let nr = shape.nr;
    state.fill_zero();
    let (gth, gph) = (shape.gth as isize, shape.gph as isize);
    for k in -gph..(shape.nph as isize + gph) {
        for j in -gth..(shape.nth as isize + gth) {
            let owned = j >= 0 && j < shape.nth as isize && k >= 0 && k < shape.nph as isize;
            for i in 0..nr {
                state.rho.set(i, j, k, rho_prof[i]);
                let mut p = p_prof[i];
                if owned && i > 0 && i < nr - 1 && opts.perturb_amplitude > 0.0 {
                    let key = node_key(
                        panel.index(),
                        i,
                        (j + j_off as isize) as usize,
                        (k + k_off as isize) as usize,
                    );
                    p *= 1.0 + node_noise(opts.seed, STREAM_PRESSURE, key, opts.perturb_amplitude);
                }
                state.press.set(i, j, k, p);
                if owned && i > 0 && i < nr - 1 && opts.seed_amplitude > 0.0 {
                    let key = node_key(
                        panel.index(),
                        i,
                        (j + j_off as isize) as usize,
                        (k + k_off as isize) as usize,
                    );
                    state.a.r.set(i, j, k, node_noise(opts.seed, STREAM_A, key, opts.seed_amplitude));
                    state
                        .a
                        .t
                        .set(i, j, k, node_noise(opts.seed, STREAM_A + 1, key, opts.seed_amplitude));
                    state
                        .a
                        .p
                        .set(i, j, k, node_noise(opts.seed, STREAM_A + 2, key, opts.seed_amplitude));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomath::approx_eq;
    use yy_mesh::{Decomp2D, PatchSpec};

    fn grid() -> PatchGrid {
        PatchGrid::new(PatchSpec::equal_spacing(16, 13, 0.35, 1.0))
    }

    #[test]
    fn conductive_profile_hits_wall_temperatures() {
        let p = PhysParams::default_laptop();
        assert!(approx_eq(conductive_temperature(&p, p.ri), p.t_inner, 1e-12));
        assert!(approx_eq(conductive_temperature(&p, 1.0), 1.0, 1e-12));
        // Monotonic decrease outward.
        assert!(conductive_temperature(&p, 0.5) > conductive_temperature(&p, 0.9));
    }

    #[test]
    fn hydrostatic_profile_is_normalized_and_monotonic() {
        let params = PhysParams::default_laptop();
        let g = grid();
        let (rho, p) = hydrostatic_profile(&params, g.r());
        assert!(approx_eq(rho[15], 1.0, 1e-12));
        assert!(approx_eq(p[15], 1.0, 1e-12));
        // Pressure and density increase toward the interior.
        for i in 0..15 {
            assert!(p[i] > p[i + 1], "p must decrease outward");
            assert!(rho[i] > 0.0);
        }
    }

    #[test]
    fn hydrostatic_profile_satisfies_the_ode() {
        // Check dp/dr ≈ −ρ g0 / r² with centered differences.
        let params = PhysParams::default_laptop();
        let g = PatchGrid::new(PatchSpec::equal_spacing(64, 13, 0.35, 1.0));
        let (rho, p) = hydrostatic_profile(&params, g.r());
        let dr = g.r().spacing();
        for i in 1..63 {
            let dpdr = (p[i + 1] - p[i - 1]) / (2.0 * dr);
            let r = g.r().coord(i);
            let rhs = -rho[i] * params.g0 / (r * r);
            // The comparison itself uses an O(Δr²) centered difference, so
            // the agreement is limited by the *test's* stencil (~0.15 %
            // near the inner wall where p varies fastest), not the profile.
            assert!(
                approx_eq(dpdr, rhs, 5e-3),
                "hydrostatics violated at i={i}: {dpdr} vs {rhs}"
            );
        }
    }

    #[test]
    fn initialization_is_decomposition_invariant() {
        let g = grid();
        let params = PhysParams::default_laptop();
        let opts = InitOptions::default();
        // Full panel.
        let mut full = State::zeros(g.full_shape());
        initialize(&mut full, &g, None, &params, &opts, Panel::Yin);
        // 2×2 decomposition; compare owned values of each tile.
        let d = Decomp2D::new(2, 2, &g);
        for rank in 0..4 {
            let t = d.tile(rank);
            let mut local = State::zeros(t.shape(&g));
            initialize(&mut local, &g, Some(&t), &params, &opts, Panel::Yin);
            for k in 0..t.nph as isize {
                for j in 0..t.nth as isize {
                    for i in 0..16 {
                        let gj = j + t.j0 as isize;
                        let gk = k + t.k0 as isize;
                        assert_eq!(local.press.at(i, j, k), full.press.at(i, gj, gk));
                        assert_eq!(local.a.t.at(i, j, k), full.a.t.at(i, gj, gk));
                    }
                }
            }
        }
    }

    #[test]
    fn panels_get_different_noise() {
        let g = grid();
        let params = PhysParams::default_laptop();
        let opts = InitOptions::default();
        let mut yin = State::zeros(g.full_shape());
        let mut yang = State::zeros(g.full_shape());
        initialize(&mut yin, &g, None, &params, &opts, Panel::Yin);
        initialize(&mut yang, &g, None, &params, &opts, Panel::Yang);
        assert_ne!(yin.press.at(5, 3, 7), yang.press.at(5, 3, 7));
    }

    #[test]
    fn walls_are_unperturbed() {
        let g = grid();
        let params = PhysParams::default_laptop();
        let opts = InitOptions { perturb_amplitude: 0.1, seed_amplitude: 0.1, seed: 3 };
        let mut s = State::zeros(g.full_shape());
        initialize(&mut s, &g, None, &params, &opts, Panel::Yin);
        let (rho_prof, p_prof) = hydrostatic_profile(&params, g.r());
        let _ = rho_prof;
        for k in 0..g.full_shape().nph as isize {
            for j in 0..g.full_shape().nth as isize {
                assert_eq!(s.press.at(0, j, k), p_prof[0]);
                assert_eq!(s.press.at(15, j, k), p_prof[15]);
                assert_eq!(s.a.r.at(0, j, k), 0.0);
                assert_eq!(s.a.p.at(15, j, k), 0.0);
            }
        }
    }

    #[test]
    fn zero_amplitudes_give_pure_background() {
        let g = grid();
        let params = PhysParams::default_laptop();
        let opts = InitOptions { perturb_amplitude: 0.0, seed_amplitude: 0.0, seed: 9 };
        let mut s = State::zeros(g.full_shape());
        initialize(&mut s, &g, None, &params, &opts, Panel::Yang);
        assert!(!s.has_non_finite());
        assert!(s.is_physical());
        assert_eq!(s.a.r.max_abs_owned(), 0.0);
        assert_eq!(s.f.r.max_abs_owned(), 0.0);
    }
}
