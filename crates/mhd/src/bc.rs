//! Physical boundary conditions at the shell walls `r = ri, ro`.
//!
//! The paper's model: both walls rotate rigidly with the frame (no-slip in
//! the rotating frame → `v = f = 0`), and wall temperatures are fixed
//! (hot inner, `T(ro) = 1` outer). We impose:
//!
//! * `f = 0` on both wall planes;
//! * `p = ρ_wall · T_wall` with the wall density frozen at its initial
//!   hydrostatic value (a Dirichlet treatment; together with `f = 0` the
//!   wall thermodynamic state is simply pinned — robust at 2nd order);
//! * magnetic condition selectable:
//!   [`MagneticBc::ConductingWall`] — tangential electric field zero, so
//!   the wall values of A stay frozen at the (tiny) initial seed; this is
//!   automatic because the RK4 update never touches the wall planes, so
//!   the variant is a no-op that *documents* the physics;
//!   [`MagneticBc::ZeroGradient`] — ∂A/∂r = 0, a crude open condition
//!   copying the first interior plane outward (useful for ablation
//!   studies of the wall condition).
//!
//! The radial wall planes are *not* evolved by the RHS (its interior
//! range is `1..nr−1`), so this function is the only writer of wall data
//! after initialization.

use crate::state::State;

/// Magnetic wall condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MagneticBc {
    /// Perfectly conducting, line-tied walls: wall A frozen.
    #[default]
    ConductingWall,
    /// Zero-gradient (∂A/∂r = 0) walls.
    ZeroGradient,
}

/// Apply the physical wall conditions to `state`.
///
/// `t_inner` is the fixed inner-wall temperature; the outer wall is at the
/// normalized temperature 1.
pub fn apply_physical_bc(state: &mut State, t_inner: f64, mag_bc: MagneticBc) {
    let shape = state.shape();
    let nr = shape.nr;
    let (gth, gph) = (shape.gth as isize, shape.gph as isize);
    for k in -gph..(shape.nph as isize + gph) {
        for j in -gth..(shape.nth as isize + gth) {
            // No-slip co-rotating walls.
            for arr in [&mut state.f.r, &mut state.f.t, &mut state.f.p] {
                arr.set(0, j, k, 0.0);
                arr.set(nr - 1, j, k, 0.0);
            }
            // Fixed wall temperature: p = ρ T_wall.
            let p_in = state.rho.at(0, j, k) * t_inner;
            let p_out = state.rho.at(nr - 1, j, k) * 1.0;
            state.press.set(0, j, k, p_in);
            state.press.set(nr - 1, j, k, p_out);
            match mag_bc {
                MagneticBc::ConductingWall => {
                    // Wall A frozen: nothing to do (RHS never updates the
                    // wall planes).
                }
                MagneticBc::ZeroGradient => {
                    for arr in [&mut state.a.r, &mut state.a.t, &mut state.a.p] {
                        let inner = arr.at(1, j, k);
                        arr.set(0, j, k, inner);
                        let outer = arr.at(nr - 2, j, k);
                        arr.set(nr - 1, j, k, outer);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yy_field::Shape;

    fn dirty_state() -> State {
        let mut s = State::zeros(Shape::new(5, 3, 3, 1, 1));
        s.rho.fill(2.0);
        s.press.fill(9.0);
        for arr in s.arrays_mut() {
            arr.set(0, 0, 0, 7.0);
            arr.set(4, 2, 2, -7.0);
        }
        s
    }

    #[test]
    fn walls_are_no_slip_and_isothermal() {
        let mut s = dirty_state();
        apply_physical_bc(&mut s, 2.5, MagneticBc::ConductingWall);
        for j in -1..4_isize {
            for k in -1..4_isize {
                assert_eq!(s.f.r.at(0, j, k), 0.0);
                assert_eq!(s.f.t.at(4, j, k), 0.0);
                // p = ρ T_wall at both walls.
                assert_eq!(s.press.at(0, j, k), s.rho.at(0, j, k) * 2.5);
                assert_eq!(s.press.at(4, j, k), s.rho.at(4, j, k));
            }
        }
        // Interior untouched.
        assert_eq!(s.press.at(2, 1, 1), 9.0);
    }

    #[test]
    fn conducting_wall_freezes_a() {
        let mut s = dirty_state();
        let before_in = s.a.r.at(0, 1, 1);
        let before_out = s.a.p.at(4, 1, 1);
        apply_physical_bc(&mut s, 2.0, MagneticBc::ConductingWall);
        assert_eq!(s.a.r.at(0, 1, 1), before_in);
        assert_eq!(s.a.p.at(4, 1, 1), before_out);
    }

    #[test]
    fn zero_gradient_copies_interior_planes() {
        let mut s = dirty_state();
        s.a.t.set(1, 1, 1, 3.25);
        s.a.t.set(3, 1, 1, -1.5);
        apply_physical_bc(&mut s, 2.0, MagneticBc::ZeroGradient);
        assert_eq!(s.a.t.at(0, 1, 1), 3.25);
        assert_eq!(s.a.t.at(4, 1, 1), -1.5);
    }

    #[test]
    fn bc_is_idempotent() {
        let mut s = dirty_state();
        apply_physical_bc(&mut s, 2.0, MagneticBc::ZeroGradient);
        let snapshot = s.clone();
        apply_physical_bc(&mut s, 2.0, MagneticBc::ZeroGradient);
        assert_eq!(s, snapshot);
    }
}
