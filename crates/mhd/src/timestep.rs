//! CFL time-step control.
//!
//! The explicit RK4 step must resolve the fastest signal: flow speed plus
//! the fast magnetosonic speed (bounded here by `c_s + v_A`). A separate
//! diffusive bound covers the explicit dissipation terms. Each rank
//! evaluates its local bound; the drivers reduce with a MIN across ranks
//! so every process steps with the same `dt`.

use crate::params::PhysParams;
use crate::rhs::InteriorRange;
use crate::state::State;
use yy_mesh::Metric;

/// Maximum signal speed `|v| + c_s + v_A` over the FD interior.
///
/// `v_A = |B| / √ρ` is evaluated from `B = ∇×A` with the same central
/// stencils as the solver; the cost is one sweep and is amortized by
/// calling this every few steps (the drivers re-use the previous `dt`
/// in between).
pub fn wave_speed_max(
    state: &State,
    metric: &Metric,
    params: &PhysParams,
    range: &InteriorRange,
) -> f64 {
    use crate::ops::{ColGeom, Cols, Spacings};
    let sp = Spacings::new(metric.dr, metric.dth, metric.dph);
    // Loop-invariant scalars hoisted to locals so the inner loop reads
    // registers, not struct fields (identical arithmetic, just fewer
    // loads the optimizer must prove redundant).
    let (inv_2dr, inv_2dt, inv_2dp) = (sp.inv_2dr, sp.inv_2dt, sp.inv_2dp);
    let gamma = params.gamma;
    // Radial windows: every slice the inner loop reads is cut to exactly
    // the interior extent (centered stencils get the extent plus one
    // frame node on each side), so indexing with a local `q` bounded by
    // the loop is provably in-range and the checks vectorize away. The
    // per-node arithmetic and the sequential max-reduction order are
    // unchanged, so the result is bit-identical to the strided spelling.
    let (i0, i1) = (range.i0, range.i1);
    let n = i1 - i0;
    let r_w = &metric.r[i0 - 1..i1 + 1];
    let ir_w = &metric.inv_r[i0..i1];
    let mut vmax: f64 = 0.0;
    for k in range.k0..range.k1 {
        for j in range.j0..range.j1 {
            let g = ColGeom::new(metric, j);
            let (inv_sin, sin_n, sin_s) = (g.inv_sin, g.sin_n, g.sin_s);
            let rho = &state.rho.row(j, k)[i0..i1];
            let prs = &state.press.row(j, k)[i0..i1];
            let fr = &state.f.r.row(j, k)[i0..i1];
            let ft = &state.f.t.row(j, k)[i0..i1];
            let fp = &state.f.p.row(j, k)[i0..i1];
            let ar = Cols::new(&state.a.r, j, k);
            let at = Cols::new(&state.a.t, j, k);
            let ap = Cols::new(&state.a.p, j, k);
            let (ar_n, ar_s) = (&ar.n[i0..i1], &ar.s[i0..i1]);
            let (ar_e, ar_w) = (&ar.e[i0..i1], &ar.w[i0..i1]);
            let (at_e, at_w) = (&at.e[i0..i1], &at.w[i0..i1]);
            let (ap_n, ap_s) = (&ap.n[i0..i1], &ap.s[i0..i1]);
            let at_c = &at.c[i0 - 1..i1 + 1];
            let ap_c = &ap.c[i0 - 1..i1 + 1];
            for q in 0..n {
                let ir = ir_w[q];
                let v2 = (fr[q] * fr[q] + ft[q] * ft[q] + fp[q] * fp[q]) / (rho[q] * rho[q]);
                let cs2 = gamma * prs[q] / rho[q];
                let b_r = ir * inv_sin
                    * ((sin_s * ap_s[q] - sin_n * ap_n[q]) * inv_2dt
                        - (at_e[q] - at_w[q]) * inv_2dp);
                let b_t = ir
                    * (inv_sin * (ar_e[q] - ar_w[q]) * inv_2dp
                        - (r_w[q + 2] * ap_c[q + 2] - r_w[q] * ap_c[q]) * inv_2dr);
                let b_p = ir
                    * ((r_w[q + 2] * at_c[q + 2] - r_w[q] * at_c[q]) * inv_2dr
                        - (ar_s[q] - ar_n[q]) * inv_2dt);
                let va2 = (b_r * b_r + b_t * b_t + b_p * b_p) / rho[q];
                let s = v2.sqrt() + cs2.sqrt() + va2.sqrt();
                vmax = vmax.max(s);
            }
        }
    }
    vmax
}

/// Component maxima of the signal speed over a tile.
///
/// Each field is the maximum of that component alone; the CFL bound uses
/// their pointwise sum, so `flow + sound + alfven` over-estimates the
/// combined maximum (the three maxima need not coincide) while each
/// component alone under-estimates it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeedBreakdown {
    /// Maximum flow speed `|v|`.
    pub flow: f64,
    /// Maximum adiabatic sound speed `√(γ p / ρ)`.
    pub sound: f64,
    /// Maximum Alfvén speed `|B| / √ρ` with `B = ∇×A`.
    pub alfven: f64,
}

impl SpeedBreakdown {
    /// Merge with another tile's breakdown (component-wise max).
    pub fn merged(&self, other: &SpeedBreakdown) -> SpeedBreakdown {
        SpeedBreakdown {
            flow: self.flow.max(other.flow),
            sound: self.sound.max(other.sound),
            alfven: self.alfven.max(other.alfven),
        }
    }
}

/// Per-component signal-speed maxima over the FD interior.
///
/// Diagnostic companion to [`wave_speed_max`]: same sweep and the same
/// `B = ∇×A` central stencils, but tracking flow, sound and Alfvén maxima
/// separately so a run report can show *which* wave limits the time step
/// (in the paper's regime the Alfvén speed dominates once the dynamo
/// saturates).
pub fn wave_speed_breakdown(
    state: &State,
    metric: &Metric,
    params: &PhysParams,
    range: &InteriorRange,
) -> SpeedBreakdown {
    use crate::ops::{ColGeom, Cols, Spacings};
    let sp = Spacings::new(metric.dr, metric.dth, metric.dph);
    let (inv_2dr, inv_2dt, inv_2dp) = (sp.inv_2dr, sp.inv_2dt, sp.inv_2dp);
    let gamma = params.gamma;
    // Same radial-window spelling as `wave_speed_max` (see there).
    let (i0, i1) = (range.i0, range.i1);
    let n = i1 - i0;
    let r_w = &metric.r[i0 - 1..i1 + 1];
    let ir_w = &metric.inv_r[i0..i1];
    let mut out = SpeedBreakdown::default();
    for k in range.k0..range.k1 {
        for j in range.j0..range.j1 {
            let g = ColGeom::new(metric, j);
            let (inv_sin, sin_n, sin_s) = (g.inv_sin, g.sin_n, g.sin_s);
            let rho = &state.rho.row(j, k)[i0..i1];
            let prs = &state.press.row(j, k)[i0..i1];
            let fr = &state.f.r.row(j, k)[i0..i1];
            let ft = &state.f.t.row(j, k)[i0..i1];
            let fp = &state.f.p.row(j, k)[i0..i1];
            let ar = Cols::new(&state.a.r, j, k);
            let at = Cols::new(&state.a.t, j, k);
            let ap = Cols::new(&state.a.p, j, k);
            let (ar_n, ar_s) = (&ar.n[i0..i1], &ar.s[i0..i1]);
            let (ar_e, ar_w) = (&ar.e[i0..i1], &ar.w[i0..i1]);
            let (at_e, at_w) = (&at.e[i0..i1], &at.w[i0..i1]);
            let (ap_n, ap_s) = (&ap.n[i0..i1], &ap.s[i0..i1]);
            let at_c = &at.c[i0 - 1..i1 + 1];
            let ap_c = &ap.c[i0 - 1..i1 + 1];
            for q in 0..n {
                let ir = ir_w[q];
                let v2 = (fr[q] * fr[q] + ft[q] * ft[q] + fp[q] * fp[q]) / (rho[q] * rho[q]);
                let cs2 = gamma * prs[q] / rho[q];
                let b_r = ir * inv_sin
                    * ((sin_s * ap_s[q] - sin_n * ap_n[q]) * inv_2dt
                        - (at_e[q] - at_w[q]) * inv_2dp);
                let b_t = ir
                    * (inv_sin * (ar_e[q] - ar_w[q]) * inv_2dp
                        - (r_w[q + 2] * ap_c[q + 2] - r_w[q] * ap_c[q]) * inv_2dr);
                let b_p = ir
                    * ((r_w[q + 2] * at_c[q + 2] - r_w[q] * at_c[q]) * inv_2dr
                        - (ar_s[q] - ar_n[q]) * inv_2dt);
                let va2 = (b_r * b_r + b_t * b_t + b_p * b_p) / rho[q];
                out.flow = out.flow.max(v2.sqrt());
                out.sound = out.sound.max(cs2.sqrt());
                out.alfven = out.alfven.max(va2.sqrt());
            }
        }
    }
    out
}

/// CFL time step from a wave speed and the tile's smallest spacing.
///
/// Combines the advective bound `cfl · Δx / s_max` with the explicit
/// diffusion bound `cfl_diff · Δx² ρ_min / max(µ, K, η)`.
pub fn cfl_timestep(
    max_speed: f64,
    min_dx: f64,
    rho_min: f64,
    params: &PhysParams,
    cfl: f64,
) -> f64 {
    assert!(min_dx > 0.0 && cfl > 0.0);
    let adv = if max_speed > 0.0 { cfl * min_dx / max_speed } else { f64::INFINITY };
    let diff_coef = params.mu.max(params.kappa).max(params.eta);
    let diff = if diff_coef > 0.0 {
        0.25 * cfl * min_dx * min_dx * rho_min.max(1e-300) / diff_coef
    } else {
        f64::INFINITY
    };
    let dt = adv.min(diff);
    assert!(dt.is_finite() && dt > 0.0, "degenerate time step: speeds {max_speed}, dx {min_dx}");
    dt
}

/// Minimum owned density (for the diffusive bound).
pub fn rho_min_owned(state: &State) -> f64 {
    let s = state.shape();
    let mut m = f64::INFINITY;
    for k in 0..s.nph as isize {
        for j in 0..s.nth as isize {
            for &v in state.rho.row(j, k) {
                m = m.min(v);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{initialize, InitOptions};
    use yy_mesh::{Panel, PatchGrid, PatchSpec};

    fn setup() -> (PatchGrid, Metric, State, PhysParams) {
        let grid = PatchGrid::new(PatchSpec::equal_spacing(16, 13, 0.35, 1.0));
        let metric = Metric::full(&grid);
        let params = PhysParams::default_laptop();
        let mut state = State::zeros(grid.full_shape());
        initialize(&mut state, &grid, None, &params, &InitOptions::default(), Panel::Yin);
        (grid, metric, state, params)
    }

    #[test]
    fn static_state_speed_is_sound_speed() {
        let (grid, metric, state, params) = setup();
        let range = InteriorRange::full_panel(&grid);
        let s = wave_speed_max(&state, &metric, &params, &range);
        // Fastest sound speed is at the hot inner wall region:
        // c_s = √(γ T) with T ≤ t_inner.
        let cs_max = params.sound_speed(params.t_inner);
        assert!(s > params.sound_speed(1.0) * 0.99, "speed {s} too low");
        assert!(s <= cs_max * 1.01, "speed {s} exceeds max sound speed {cs_max}");
    }

    #[test]
    fn flow_and_field_raise_the_speed() {
        let (grid, metric, mut state, params) = setup();
        let range = InteriorRange::full_panel(&grid);
        let base = wave_speed_max(&state, &metric, &params, &range);
        state.f.p.fill(0.5); // add flow
        let with_flow = wave_speed_max(&state, &metric, &params, &range);
        assert!(with_flow > base);
        // Strong uniform-B potential raises it further (Alfvén).
        let shape = state.shape();
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.a.p.set(i, j, k, 2.0 * grid.r().coord(i) * st);
                }
            }
        }
        let with_b = wave_speed_max(&state, &metric, &params, &range);
        assert!(with_b > with_flow);
    }

    #[test]
    fn breakdown_components_bracket_the_combined_maximum() {
        let (grid, metric, mut state, params) = setup();
        let range = InteriorRange::full_panel(&grid);
        state.f.p.fill(0.3); // flow so every component is non-trivial
        let shape = state.shape();
        for k in -1..(shape.nph as isize + 1) {
            for j in -1..(shape.nth as isize + 1) {
                let st = grid.theta().coord_signed(j).sin();
                for i in 0..shape.nr {
                    state.a.p.set(i, j, k, 0.8 * grid.r().coord(i) * st);
                }
            }
        }
        let combined = wave_speed_max(&state, &metric, &params, &range);
        let b = wave_speed_breakdown(&state, &metric, &params, &range);
        assert!(b.flow > 0.0 && b.sound > 0.0 && b.alfven > 0.0);
        for comp in [b.flow, b.sound, b.alfven] {
            assert!(comp <= combined * (1.0 + 1e-12), "component {comp} exceeds combined {combined}");
        }
        let sum = b.flow + b.sound + b.alfven;
        assert!(combined <= sum * (1.0 + 1e-12), "combined {combined} exceeds sum {sum}");
    }

    #[test]
    fn breakdown_merge_is_componentwise_max() {
        let a = SpeedBreakdown { flow: 1.0, sound: 5.0, alfven: 0.1 };
        let b = SpeedBreakdown { flow: 2.0, sound: 4.0, alfven: 0.3 };
        let m = a.merged(&b);
        assert_eq!(m, SpeedBreakdown { flow: 2.0, sound: 5.0, alfven: 0.3 });
        assert_eq!(m, b.merged(&a));
    }

    #[test]
    fn static_state_breakdown_is_sound_dominated() {
        let (grid, metric, state, params) = setup();
        let range = InteriorRange::full_panel(&grid);
        let b = wave_speed_breakdown(&state, &metric, &params, &range);
        assert_eq!(b.flow, 0.0);
        assert!(b.alfven < 1e-3 * b.sound, "seed field should be negligible: {b:?}");
        let combined = wave_speed_max(&state, &metric, &params, &range);
        assert!(b.sound <= combined && combined <= b.sound + b.alfven, "{b:?} vs {combined}");
    }

    #[test]
    fn cfl_scales_inversely_with_speed() {
        let p = PhysParams::default_laptop();
        let dt1 = cfl_timestep(1.0, 0.01, 1.0, &p, 0.4);
        let dt2 = cfl_timestep(2.0, 0.01, 1.0, &p, 0.4);
        assert!((dt1 / dt2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diffusive_bound_kicks_in_for_large_dissipation() {
        let mut p = PhysParams::default_laptop();
        p.mu = 10.0;
        let dt = cfl_timestep(1.0, 0.01, 1.0, &p, 0.4);
        // Advective bound would be 4e-3; diffusive is 0.25·0.4·1e-4/10 = 1e-6.
        assert!(dt < 1e-5);
    }

    #[test]
    fn rho_min_ignores_ghosts() {
        let (_, _, mut state, _) = setup();
        state.rho.set(0, -1, 0, 1e-12); // ghost
        let m = rho_min_owned(&state);
        assert!(m > 0.1);
    }
}
