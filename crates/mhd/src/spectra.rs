//! Azimuthal spectra: the quantitative form of "the number of convection
//! columns increases" (paper §V).
//!
//! Convection in a rapidly rotating shell organizes into columns with a
//! dominant azimuthal wavenumber `m`. A plain DFT of an equatorial ring
//! of any column-aligned field (axial vorticity, radial velocity) makes
//! that count precise: the power spectrum peaks at the column count, and
//! its drift to higher `m` with increasing Rayleigh number is the
//! paper's "more columns, more turbulent" statement.
//!
//! The rings here are short (10²–10³ samples) and spectra are produced a
//! few times per run, so a hand-rolled O(n·m) DFT is the right tool — no
//! FFT dependency.

/// Power in azimuthal wavenumbers `0..=m_max` of a uniformly sampled
/// ring: `P(m) = |Σ_k f_k e^{−i m φ_k}|² / n²`.
pub fn azimuthal_power(ring: &[f64], m_max: usize) -> Vec<f64> {
    let n = ring.len();
    assert!(n > 1, "ring too short for a spectrum");
    assert!(m_max < n / 2, "m_max {m_max} exceeds the Nyquist limit of {n} samples");
    let mut power = Vec::with_capacity(m_max + 1);
    for m in 0..=m_max {
        let (mut re, mut im) = (0.0_f64, 0.0_f64);
        for (k, &v) in ring.iter().enumerate() {
            let phase = -(m as f64) * std::f64::consts::TAU * k as f64 / n as f64;
            re += v * phase.cos();
            im += v * phase.sin();
        }
        power.push((re * re + im * im) / (n as f64 * n as f64));
    }
    power
}

/// The dominant nonzero azimuthal wavenumber of a ring — the column
/// count (cyclone/anticyclone pairs alternate with period `2π/m`).
pub fn dominant_mode(ring: &[f64], m_max: usize) -> usize {
    let power = azimuthal_power(ring, m_max);
    power
        .iter()
        .enumerate()
        .skip(1) // the mean (m = 0) is not a column count
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite power"))
        .map(|(m, _)| m)
        .unwrap_or(0)
}

/// Spectral centroid of the nonzero modes, `Σ m P(m) / Σ P(m)` — a
/// smoother "effective column count" than the argmax, useful when the
/// spectrum is broad (turbulent states).
pub fn spectral_centroid(ring: &[f64], m_max: usize) -> f64 {
    let power = azimuthal_power(ring, m_max);
    let (mut num, mut den) = (0.0, 0.0);
    for (m, &p) in power.iter().enumerate().skip(1) {
        num += m as f64 * p;
        den += p;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// One-call summary of a ring's azimuthal structure, the shape the
/// science-telemetry sampler feeds into its `dominant_m` channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeProbe {
    /// Dominant nonzero wavenumber (the column count).
    pub dominant_m: usize,
    /// Power-weighted effective column count.
    pub centroid: f64,
    /// Total power in the nonzero modes `1..=m_max`.
    pub column_power: f64,
}

/// Probe a ring once: dominant mode, centroid and nonzero-mode power
/// from a single spectrum evaluation (the separate [`dominant_mode`] /
/// [`spectral_centroid`] calls would each redo the O(n·m) DFT).
///
/// `m_max` is clamped below the ring's Nyquist limit, so callers can
/// pass a fixed budget (e.g. 40) without sizing it to the ring.
pub fn probe(ring: &[f64], m_max: usize) -> ModeProbe {
    let m_max = m_max.min((ring.len() / 2).saturating_sub(1));
    let power = azimuthal_power(ring, m_max);
    let (mut best_m, mut best_p) = (0, f64::NEG_INFINITY);
    let (mut num, mut den) = (0.0, 0.0);
    for (m, &p) in power.iter().enumerate().skip(1) {
        if p > best_p {
            best_m = m;
            best_p = p;
        }
        num += m as f64 * p;
        den += p;
    }
    ModeProbe {
        dominant_m: best_m,
        centroid: if den > 0.0 { num / den } else { 0.0 },
        column_power: den,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomath::approx_eq;

    fn ring_with_mode(n: usize, m: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|k| amp * (m as f64 * std::f64::consts::TAU * k as f64 / n as f64).cos())
            .collect()
    }

    #[test]
    fn pure_mode_power_is_isolated() {
        let ring = ring_with_mode(128, 6, 2.0);
        let p = azimuthal_power(&ring, 16);
        // P(6) = (amp/2)² = 1.0 for a real cosine; all other modes ~0.
        assert!(approx_eq(p[6], 1.0, 1e-10), "P(6) = {}", p[6]);
        for (m, &v) in p.iter().enumerate() {
            if m != 6 {
                assert!(v < 1e-20, "leakage at m={m}: {v}");
            }
        }
    }

    #[test]
    fn dominant_mode_finds_the_column_count() {
        let ring = ring_with_mode(256, 9, 1.0);
        assert_eq!(dominant_mode(&ring, 20), 9);
        // Superposition: strongest mode wins.
        let mut mixed = ring_with_mode(256, 4, 1.0);
        for (a, b) in mixed.iter_mut().zip(ring_with_mode(256, 11, 3.0)) {
            *a += b;
        }
        assert_eq!(dominant_mode(&mixed, 20), 11);
    }

    #[test]
    fn mean_does_not_masquerade_as_columns() {
        let ring: Vec<f64> = ring_with_mode(128, 5, 0.1).iter().map(|v| v + 100.0).collect();
        assert_eq!(dominant_mode(&ring, 16), 5);
    }

    #[test]
    fn centroid_interpolates_between_modes() {
        let mut ring = ring_with_mode(256, 4, 1.0);
        for (a, b) in ring.iter_mut().zip(ring_with_mode(256, 8, 1.0)) {
            *a += b;
        }
        let c = spectral_centroid(&ring, 20);
        assert!((c - 6.0).abs() < 0.2, "centroid {c}");
    }

    #[test]
    fn phase_shift_does_not_change_power() {
        let n = 200;
        let a: Vec<f64> =
            (0..n).map(|k| (7.0 * std::f64::consts::TAU * k as f64 / n as f64).cos()).collect();
        let b: Vec<f64> = (0..n)
            .map(|k| (7.0 * std::f64::consts::TAU * k as f64 / n as f64 + 1.234).cos())
            .collect();
        let pa = azimuthal_power(&a, 12);
        let pb = azimuthal_power(&b, 12);
        for (x, y) in pa.iter().zip(&pb) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn nyquist_guard() {
        azimuthal_power(&[1.0; 16], 8);
    }

    #[test]
    fn probe_agrees_with_the_individual_queries() {
        let mut ring = ring_with_mode(256, 4, 1.0);
        for (a, b) in ring.iter_mut().zip(ring_with_mode(256, 11, 3.0)) {
            *a += b;
        }
        let p = probe(&ring, 20);
        assert_eq!(p.dominant_m, dominant_mode(&ring, 20));
        assert!(approx_eq(p.centroid, spectral_centroid(&ring, 20), 1e-12));
        assert!(p.column_power > 0.0);
    }

    #[test]
    fn probe_clamps_m_max_to_short_rings() {
        // A 16-sample ring cannot resolve m = 40; the probe clamps to 7
        // (below Nyquist) instead of tripping the assert.
        let ring = ring_with_mode(16, 3, 1.0);
        assert_eq!(probe(&ring, 40).dominant_m, 3);
        // Degenerate rings produce the "no columns" answer, not a panic.
        assert_eq!(probe(&[1.0, 2.0], 40).dominant_m, 0);
    }
}
