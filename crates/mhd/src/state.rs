//! The simulation state: the eight basic variables of the paper.

use yy_field::{Array3, Shape, VectorField};

/// The basic variables: ρ, p, mass flux f = ρv, vector potential A.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Mass density ρ.
    pub rho: Array3,
    /// Pressure p.
    pub press: Array3,
    /// Mass flux density f = ρv.
    pub f: VectorField,
    /// Magnetic vector potential A.
    pub a: VectorField,
}

impl State {
    /// Zero-initialized state.
    pub fn zeros(shape: Shape) -> Self {
        State {
            rho: Array3::zeros(shape),
            press: Array3::zeros(shape),
            f: VectorField::zeros(shape),
            a: VectorField::zeros(shape),
        }
    }

    /// Shared shape of the eight arrays.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.rho.shape()
    }

    /// The eight scalar arrays in canonical order
    /// (ρ, p, fr, fθ, fφ, Ar, Aθ, Aφ) — the order used by ghost-fill
    /// packing, checkpoints and snapshots.
    pub fn arrays(&self) -> [&Array3; 8] {
        [
            &self.rho,
            &self.press,
            &self.f.r,
            &self.f.t,
            &self.f.p,
            &self.a.r,
            &self.a.t,
            &self.a.p,
        ]
    }

    /// Mutable view of the eight arrays in canonical order.
    pub fn arrays_mut(&mut self) -> [&mut Array3; 8] {
        [
            &mut self.rho,
            &mut self.press,
            &mut self.f.r,
            &mut self.f.t,
            &mut self.f.p,
            &mut self.a.r,
            &mut self.a.t,
            &mut self.a.p,
        ]
    }

    /// `self ← self + c · other` on all eight arrays.
    pub fn axpy(&mut self, c: f64, other: &State) {
        self.rho.axpy(c, &other.rho);
        self.press.axpy(c, &other.press);
        self.f.axpy(c, &other.f);
        self.a.axpy(c, &other.a);
    }

    /// `self ← base + c · delta` on all eight arrays.
    pub fn assign_axpy(&mut self, base: &State, c: f64, delta: &State) {
        self.rho.assign_axpy(&base.rho, c, &delta.rho);
        self.press.assign_axpy(&base.press, c, &delta.press);
        self.f.assign_axpy(&base.f, c, &delta.f);
        self.a.assign_axpy(&base.a, c, &delta.a);
    }

    /// Fused RK4 combine on all eight arrays: `self ← self + a·delta`
    /// and `stage ← base + c·delta` in one traversal of `delta` —
    /// bit-identical to `axpy` followed by `assign_axpy` with the same
    /// coefficients, reading the stage tendency once instead of twice.
    pub fn axpy_and_assign_axpy(
        &mut self,
        a: f64,
        delta: &State,
        stage: &mut State,
        base: &State,
        c: f64,
    ) {
        self.rho.axpy_and_assign_axpy(a, &delta.rho, &mut stage.rho, &base.rho, c);
        self.press.axpy_and_assign_axpy(a, &delta.press, &mut stage.press, &base.press, c);
        self.f.axpy_and_assign_axpy(a, &delta.f, &mut stage.f, &base.f, c);
        self.a.axpy_and_assign_axpy(a, &delta.a, &mut stage.a, &base.a, c);
    }

    /// Copy all arrays from `other`.
    pub fn copy_from(&mut self, other: &State) {
        self.rho.copy_from(&other.rho);
        self.press.copy_from(&other.press);
        self.f.copy_from(&other.f);
        self.a.copy_from(&other.a);
    }

    /// Zero every array (ghosts included).
    pub fn fill_zero(&mut self) {
        for arr in self.arrays_mut() {
            arr.fill(0.0);
        }
    }

    /// `true` iff any of the eight arrays contains NaN/inf.
    pub fn has_non_finite(&self) -> bool {
        self.arrays().iter().any(|a| a.has_non_finite())
    }

    /// Positivity check over the owned region: ρ > 0 and p > 0 everywhere
    /// (a cheap guard the drivers run between steps).
    pub fn is_physical(&self) -> bool {
        let s = self.shape();
        for k in 0..s.nph as isize {
            for j in 0..s.nth as isize {
                for (&r, &p) in self.rho.row(j, k).iter().zip(self.press.row(j, k)) {
                    if !(r > 0.0 && p > 0.0) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Shape {
        Shape::new(3, 4, 5, 1, 1)
    }

    #[test]
    fn canonical_order_is_stable() {
        let mut s = State::zeros(shape());
        for (idx, arr) in s.arrays_mut().into_iter().enumerate() {
            arr.fill(idx as f64);
        }
        assert_eq!(s.rho.at(0, 0, 0), 0.0);
        assert_eq!(s.press.at(0, 0, 0), 1.0);
        assert_eq!(s.f.r.at(0, 0, 0), 2.0);
        assert_eq!(s.f.p.at(0, 0, 0), 4.0);
        assert_eq!(s.a.r.at(0, 0, 0), 5.0);
        assert_eq!(s.a.p.at(0, 0, 0), 7.0);
    }

    #[test]
    fn axpy_combines_states() {
        let mut a = State::zeros(shape());
        let mut b = State::zeros(shape());
        b.rho.fill(2.0);
        b.a.p.fill(-4.0);
        a.axpy(0.5, &b);
        assert_eq!(a.rho.at(1, 1, 1), 1.0);
        assert_eq!(a.a.p.at(1, 1, 1), -2.0);
        assert_eq!(a.press.at(1, 1, 1), 0.0);
    }

    #[test]
    fn assign_axpy_builds_stage_state() {
        let mut base = State::zeros(shape());
        base.rho.fill(1.0);
        let mut k = State::zeros(shape());
        k.rho.fill(10.0);
        let mut stage = State::zeros(shape());
        stage.assign_axpy(&base, 0.1, &k);
        assert!((stage.rho.at(0, 0, 0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn physicality_checks() {
        let mut s = State::zeros(shape());
        assert!(!s.is_physical()); // ρ = p = 0 is not physical
        s.rho.fill(1.0);
        s.press.fill(1.0);
        assert!(s.is_physical());
        s.press.set(1, 2, 3, -1.0);
        assert!(!s.is_physical());
        assert!(!s.has_non_finite());
        s.f.t.set(0, 0, 0, f64::NAN);
        assert!(s.has_non_finite());
    }
}
