//! Physical parameters of the normalized MHD system.
//!
//! Normalization (paper §III): outer radius `ro = 1`, outer-wall
//! temperature `T(ro) = 1`, outer-wall density `ρ(ro) = 1`. The system has
//! six free parameters, including the three dissipation constants µ, K, η;
//! the paper's flagship run used dissipation 10× smaller than their earlier
//! dipole-reversal runs, i.e. Rayleigh number ≈ 3 × 10⁶ and Ekman number
//! ≈ 2 × 10⁻⁵. Laptop-scale runs in this repository use gentler values
//! (the defaults below) for stability at coarse resolution; the parameter
//! struct lets every example/bench state exactly what it ran.

/// Parameters of the normalized compressible MHD system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysParams {
    /// Ratio of specific heats γ.
    pub gamma: f64,
    /// Dynamic viscosity µ (constant).
    pub mu: f64,
    /// Thermal conductivity K (constant).
    pub kappa: f64,
    /// Electrical resistivity η (constant).
    pub eta: f64,
    /// Gravity coefficient: `g = −g0 / r² r̂`.
    pub g0: f64,
    /// Frame rotation rate Ω (axis = geographic z, i.e. Yin's polar axis).
    pub omega: f64,
    /// Inner-wall temperature (outer wall is 1 by normalization).
    pub t_inner: f64,
    /// Inner shell radius (outer is 1 by normalization).
    pub ri: f64,
}

impl PhysParams {
    /// Gentle defaults that convect stably at the coarse resolutions used
    /// in tests and examples.
    pub fn default_laptop() -> Self {
        PhysParams {
            gamma: 5.0 / 3.0,
            mu: 2e-3,
            kappa: 2e-3,
            eta: 2e-3,
            g0: 1.0,
            omega: 2.0,
            t_inner: 2.0,
            ri: 0.35,
        }
    }

    /// Parameters *shaped like* the paper's flagship run: the paper
    /// quotes Rayleigh number ≈ 3 × 10⁶ and Ekman number ≈ 2 × 10⁻⁵
    /// (its exact normalization is not spelled out, so we choose µ, K and
    /// Ω to land on those dimensionless targets under this crate's
    /// definitions). Only usable at resolutions far beyond a laptop —
    /// provided so the performance model and documentation can reference
    /// the real regime.
    pub fn paper_flagship() -> Self {
        PhysParams {
            gamma: 5.0 / 3.0,
            mu: 3.1e-4,
            kappa: 3.1e-4,
            eta: 3.1e-4,
            g0: 1.0,
            omega: 18.0,
            t_inner: 2.0,
            ri: 1200.0 / 3500.0, // Earth's inner-core / core radius ratio
        }
    }

    /// A convection-only configuration for the Fig. 2 flow-structure
    /// studies: pair it with a zero magnetic seed (the induction equation
    /// then stays identically zero). η is left at the default — raising
    /// it would needlessly throttle the explicit diffusive CFL bound.
    pub fn convection_only() -> Self {
        Self::default_laptop()
    }

    /// Sound speed at temperature `t`: `c_s = √(γ T)`.
    #[inline]
    pub fn sound_speed(&self, t: f64) -> f64 {
        (self.gamma * t).sqrt()
    }

    /// Ekman number `E = µ / (2 Ω d²)` with shell gap `d = 1 − ri`
    /// (using the outer-wall density 1 as the density scale).
    pub fn ekman(&self) -> f64 {
        let d = 1.0 - self.ri;
        self.mu / (2.0 * self.omega * d * d)
    }

    /// A Rayleigh-number-like vigor index
    /// `Ra = g0 ΔT d³ / (µ K)` with ΔT = t_inner − 1, d = 1 − ri (density
    /// and specific-heat scales are 1 in paper units).
    pub fn rayleigh(&self) -> f64 {
        let d = 1.0 - self.ri;
        self.g0 * (self.t_inner - 1.0) * d.powi(3) / (self.mu * self.kappa)
    }

    /// Sanity-check the parameter set without panicking; the CLI uses
    /// this as a pre-flight so bad configs exit with a diagnostic
    /// instead of an assertion backtrace.
    pub fn check(&self) -> Result<(), String> {
        if !(self.gamma > 1.0) {
            return Err(format!("γ must exceed 1 (got {})", self.gamma));
        }
        if !(self.mu >= 0.0 && self.kappa >= 0.0 && self.eta >= 0.0) {
            return Err(format!(
                "dissipation coefficients must be non-negative (µ {}, κ {}, η {})",
                self.mu, self.kappa, self.eta
            ));
        }
        if !(self.ri > 0.0 && self.ri < 1.0) {
            return Err(format!("ri must lie in (0, 1) (got {})", self.ri));
        }
        if !(self.t_inner > 1.0) {
            return Err(format!(
                "inner wall must be hotter than outer (T(ro) = 1; t_inner {})",
                self.t_inner
            ));
        }
        if !(self.g0 >= 0.0) {
            return Err(format!("gravity must point inward (g0 {})", self.g0));
        }
        if !(self.omega >= 0.0) {
            return Err(format!("use a non-negative rotation rate (omega {})", self.omega));
        }
        Ok(())
    }

    /// Sanity-check the parameter set; panics on nonsense values. Called
    /// by the drivers at setup.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid physics parameters: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PhysParams::default_laptop().validate();
        PhysParams::paper_flagship().validate();
        PhysParams::convection_only().validate();
    }

    #[test]
    fn paper_flagship_is_in_the_advertised_regime() {
        let p = PhysParams::paper_flagship();
        // Ekman number ~2e-5 (paper §III).
        let ek = p.ekman();
        assert!(
            (5e-6..5e-5).contains(&ek),
            "Ekman number {ek:.2e} not in the paper's regime"
        );
        // Rayleigh-like index within an order of magnitude of 3e6.
        let ra = p.rayleigh();
        assert!((3e5..3e7).contains(&ra), "Rayleigh index {ra:.2e}");
    }

    #[test]
    fn sound_speed_scaling() {
        let p = PhysParams::default_laptop();
        assert!((p.sound_speed(1.0) - (5.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(p.sound_speed(4.0) > p.sound_speed(1.0));
    }

    #[test]
    #[should_panic(expected = "hotter")]
    fn cold_inner_wall_rejected() {
        let mut p = PhysParams::default_laptop();
        p.t_inner = 0.5;
        p.validate();
    }

    #[test]
    fn convection_only_keeps_dissipation_mild() {
        // The dynamo is disabled by a zero seed, not by huge η (which
        // would throttle the diffusive CFL bound for no benefit).
        let p = PhysParams::convection_only();
        assert!(p.eta < 0.1);
    }
}
