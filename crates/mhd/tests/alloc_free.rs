//! Steady-state allocation guard for the hot kernels.
//!
//! The RHS used to allocate a fresh `r²` table on every call (a `Vec`
//! built inside the sweep) — invisible in unit tests, but at four RK4
//! stages per step it put the allocator on the critical path of every
//! step. The table now lives in `Metric::r2`; this test pins the fix by
//! wrapping the global allocator in a counter and asserting that a
//! warmed-up step's kernels — fused RHS, reference RHS, the CFL wave
//! scan, and the fused RK4 combine — perform **zero** heap allocations.
//! Any future per-call `Vec`/`Box` smuggled into these loops fails here.
//!
//! Everything runs inside one `#[test]` because the counter is global:
//! a second test thread would bleed its allocations into the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use yy_field::Meters;
use yy_mesh::{Metric, Panel, PatchGrid, PatchSpec};
use yy_mhd::init::{initialize, InitOptions};
use yy_mhd::rhs::{compute_rhs, InteriorRange, RhsScratch};
use yy_mhd::tables::rotation_axis;
use yy_mhd::{wave_speed_max, ForceTables, PhysParams, State};

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free to happen; only acquiring memory
/// marks a kernel as non-steady-state).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`, measured after it has already run once
/// (the first call may lazily grow buffers; steady state may not).
fn allocs_in<F: FnMut()>(mut f: F) -> u64 {
    f(); // warm
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..3 {
        f();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn hot_kernels_do_not_allocate_in_steady_state() {
    let grid = PatchGrid::new(PatchSpec::equal_spacing(16, 13, 0.35, 1.0));
    let metric = Metric::full(&grid);
    let params = PhysParams::default_laptop();
    let (_, nth, nph) = grid.dims();
    let forces = ForceTables::new(
        &metric,
        nth,
        nph,
        1,
        params.g0,
        params.omega,
        rotation_axis(Panel::Yin),
    );
    let shape = grid.full_shape();
    let mut state = State::zeros(shape);
    initialize(
        &mut state,
        &grid,
        None,
        &params,
        &InitOptions { perturb_amplitude: 1e-2, ..InitOptions::default() },
        Panel::Yin,
    );
    let range = InteriorRange::full_panel(&grid);
    let mut out = State::zeros(shape);
    let mut meter = Meters::new();

    // Fused production sweep.
    let mut scratch = RhsScratch::new(shape);
    let n = allocs_in(|| {
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter)
    });
    assert_eq!(n, 0, "fused RHS allocated {n} times in steady state");

    // Reference sweep — the exactness oracle must be equally clean (this
    // is where the per-call r² Vec used to hide).
    scratch.use_reference = true;
    let n = allocs_in(|| {
        compute_rhs(&state, &metric, &forces, &params, &range, &mut scratch, &mut out, &mut meter)
    });
    assert_eq!(n, 0, "reference RHS allocated {n} times in steady state");
    scratch.use_reference = false;

    // CFL wave scan.
    let n = allocs_in(|| {
        std::hint::black_box(wave_speed_max(&state, &metric, &params, &range));
    });
    assert_eq!(n, 0, "wave_speed_max allocated {n} times in steady state");

    // Fused RK4 combine (accumulate + stage build in one traversal).
    let mut acc = State::zeros(shape);
    let mut stage = State::zeros(shape);
    let base = State::zeros(shape);
    let n = allocs_in(|| {
        acc.axpy_and_assign_axpy(0.5, &out, &mut stage, &base, 0.25);
    });
    assert_eq!(n, 0, "fused RK4 combine allocated {n} times in steady state");
}
