//! Property tests of the initial conditions on the `yy-testkit` harness:
//! initialization must be a pure function of (options, panel) — the
//! determinism everything downstream (checkpoint equality, parallel
//! equivalence) is built on.

use yy_mesh::{Panel, PatchGrid, PatchSpec};
use yy_mhd::init::InitOptions;
use yy_mhd::{initialize, PhysParams, State};
use yy_testkit::{check_with, tk_assert, Config};

fn grid() -> PatchGrid {
    PatchGrid::new(PatchSpec::equal_spacing(6, 13, 0.35, 1.0))
}

fn init_state(grid: &PatchGrid, opts: &InitOptions, panel: Panel) -> State {
    let params = PhysParams::default_laptop();
    let mut state = State::zeros(grid.full_shape());
    initialize(&mut state, grid, None, &params, opts, panel);
    state
}

fn states_bit_identical(a: &State, b: &State) -> bool {
    a.arrays()
        .iter()
        .zip(b.arrays().iter())
        .all(|(x, y)| {
            x.data().iter().zip(y.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

#[test]
fn same_seed_initializes_bit_identically() {
    let grid = grid();
    check_with(
        Config::with_cases(8),
        "same_seed_initializes_bit_identically",
        |g| (g.below(u64::MAX), g.bool()),
        |&(seed, yang)| {
            let panel = if yang { Panel::Yang } else { Panel::Yin };
            let opts =
                InitOptions { perturb_amplitude: 1e-2, seed_amplitude: 1e-4, seed };
            let a = init_state(&grid, &opts, panel);
            let b = init_state(&grid, &opts, panel);
            tk_assert!(states_bit_identical(&a, &b), "same seed produced different states");
            Ok(())
        },
    );
}

#[test]
fn different_seeds_perturb_differently() {
    let grid = grid();
    check_with(
        Config::with_cases(8),
        "different_seeds_perturb_differently",
        |g| g.below(u64::MAX - 1),
        |&seed| {
            let opts =
                InitOptions { perturb_amplitude: 1e-2, seed_amplitude: 1e-4, seed };
            let other = InitOptions { seed: seed + 1, ..opts };
            let a = init_state(&grid, &opts, Panel::Yin);
            let b = init_state(&grid, &other, Panel::Yin);
            tk_assert!(!states_bit_identical(&a, &b), "different seeds agreed exactly");
            Ok(())
        },
    );
}

#[test]
fn zero_amplitude_makes_seed_irrelevant() {
    let grid = grid();
    check_with(
        Config::with_cases(8),
        "zero_amplitude_makes_seed_irrelevant",
        |g| (g.below(u64::MAX), g.below(u64::MAX)),
        |&(s1, s2)| {
            let a = init_state(
                &grid,
                &InitOptions { perturb_amplitude: 0.0, seed_amplitude: 0.0, seed: s1 },
                Panel::Yin,
            );
            let b = init_state(
                &grid,
                &InitOptions { perturb_amplitude: 0.0, seed_amplitude: 0.0, seed: s2 },
                Panel::Yin,
            );
            tk_assert!(
                states_bit_identical(&a, &b),
                "unperturbed state depends on the seed"
            );
            Ok(())
        },
    );
}

#[test]
fn initialized_state_is_physical_for_any_small_perturbation() {
    let grid = grid();
    check_with(
        Config::with_cases(12),
        "initialized_state_is_physical_for_any_small_perturbation",
        |g| (g.below(u64::MAX), g.range_f64(0.0, 0.1)),
        |&(seed, amp)| {
            let opts = InitOptions { perturb_amplitude: amp, seed_amplitude: 1e-4, seed };
            let state = init_state(&grid, &opts, Panel::Yin);
            tk_assert!(state.is_physical(), "amp {amp}, seed {seed}");
            Ok(())
        },
    );
}
