//! Minimal 3-component Cartesian vector used throughout the geometry layer.
//!
//! Deliberately a plain `Copy` struct of three `f64`s: the hot numerical
//! kernels in `yy-mhd` work on flat arrays, so this type only appears in
//! setup-time geometry (transforms, interpolation tables) where clarity
//! beats micro-optimization.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A Cartesian 3-vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Construct from Cartesian components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product `self × other`.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the square root when only comparisons matter).
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics (in debug builds) if the vector is numerically zero; the
    /// geometry layer never normalizes degenerate directions.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing a zero vector");
        self / n
    }

    /// Component-wise maximum absolute value.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-12));
        assert!(approx_eq(c.dot(b), 0.0, 1e-12));
    }

    #[test]
    fn cross_of_axes() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(y.cross(x), -z);
    }

    #[test]
    fn norm_and_normalized() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx_eq(v.norm(), 5.0, 1e-15));
        assert!(approx_eq(v.normalized().norm(), 1.0, 1e-15));
        assert!(approx_eq(v.norm2(), 25.0, 1e-15));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 0.25);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(2.0 * a, a + a);
        assert_eq!((a * 2.0) / 2.0, a);
        let mut b = a;
        b += a;
        assert_eq!(b, a * 2.0);
        b -= a;
        assert_eq!(b, a);
    }

    #[test]
    fn max_abs_picks_largest_component() {
        assert_eq!(Vec3::new(-3.0, 2.0, 1.0).max_abs(), 3.0);
        assert_eq!(Vec3::new(0.0, -7.5, 1.0).max_abs(), 7.5);
    }
}
