//! Trapezoidal quadrature weights for volume integrals on spherical-shell
//! patches.
//!
//! Energy diagnostics in the solver are integrals
//! `∫ q(r, θ, φ) r² sin θ dr dθ dφ` over a patch. On a uniform node grid the
//! composite trapezoid rule gives weight `d` to interior nodes and `d / 2`
//! to end nodes in each dimension; the full 3-D weight is the product of
//! the per-dimension weights times the metric `r² sin θ`.

use crate::grid1d::Grid1D;

/// Per-node trapezoid weights for a 1-D grid: `d/2` at the ends, `d`
/// inside.
pub fn trapezoid_weights(g: &Grid1D) -> Vec<f64> {
    let n = g.len();
    let d = g.spacing();
    let mut w = vec![d; n];
    w[0] = 0.5 * d;
    w[n - 1] = 0.5 * d;
    w
}

/// Integrate samples `f[i]` given at the nodes of `g` with the composite
/// trapezoid rule.
pub fn integrate_1d(g: &Grid1D, f: &[f64]) -> f64 {
    assert_eq!(f.len(), g.len(), "sample count must match grid size");
    trapezoid_weights(g).iter().zip(f).map(|(w, v)| w * v).sum()
}

/// Volume element weights `w_r(i) * w_θ(j) * w_φ(k) * r_i² sin θ_j` for a
/// spherical-shell patch, returned as per-dimension factor arrays so the
/// caller can fuse them into its own loops without materialising an
/// `nr × nθ × nφ` array.
pub struct ShellWeights {
    /// `w_r(i) * r_i²`
    pub radial: Vec<f64>,
    /// `w_θ(j) * sin θ_j`
    pub colat: Vec<f64>,
    /// `w_φ(k)`
    pub lon: Vec<f64>,
}

impl ShellWeights {
    /// Build the per-dimension weight factors for a shell patch.
    pub fn new(r: &Grid1D, theta: &Grid1D, phi: &Grid1D) -> Self {
        let radial = trapezoid_weights(r)
            .into_iter()
            .zip(r.coords())
            .map(|(w, ri)| w * ri * ri)
            .collect();
        let colat = trapezoid_weights(theta)
            .into_iter()
            .zip(theta.coords())
            .map(|(w, tj)| w * tj.sin())
            .collect();
        let lon = trapezoid_weights(phi);
        ShellWeights { radial, colat, lon }
    }

    /// Total measure `∫ dV` of the patch (sum of all weights).
    pub fn volume(&self) -> f64 {
        let sr: f64 = self.radial.iter().sum();
        let st: f64 = self.colat.iter().sum();
        let sp: f64 = self.lon.iter().sum();
        sr * st * sp
    }

    /// Weight of the single node `(i, j, k)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.radial[i] * self.colat[j] * self.lon[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::PI;

    #[test]
    fn integrate_polynomial_exactly_for_linear() {
        // Trapezoid is exact for linear functions.
        let g = Grid1D::new(9, 0.0, 2.0, 0);
        let f: Vec<f64> = g.coords().map(|x| 3.0 * x + 1.0).collect();
        assert!(approx_eq(integrate_1d(&g, &f), 8.0, 1e-13)); // ∫(3x+1) over [0,2] = 6+2
    }

    #[test]
    fn integrate_converges_second_order() {
        // ∫ sin(x) dx over [0, π] = 2, with O(d²) error.
        let err = |n: usize| {
            let g = Grid1D::new(n, 0.0, PI, 0);
            let f: Vec<f64> = g.coords().map(f64::sin).collect();
            (integrate_1d(&g, &f) - 2.0).abs()
        };
        let (e1, e2) = (err(17), err(33));
        let rate = (e1 / e2).log2();
        assert!(rate > 1.9 && rate < 2.1, "rate = {rate}");
    }

    #[test]
    fn full_shell_volume() {
        // Full shell ri..ro, θ ∈ [0, π], φ ∈ (−π, π]:
        // V = 4π/3 (ro³ − ri³).
        let (ri, ro) = (0.35, 1.0);
        let w = ShellWeights::new(
            &Grid1D::new(129, ri, ro, 0),
            &Grid1D::new(129, 0.0, PI, 0),
            &Grid1D::new(257, -PI, PI, 0),
        );
        let exact = 4.0 * PI / 3.0 * (ro.powi(3) - ri.powi(3));
        assert!(
            approx_eq(w.volume(), exact, 1e-3),
            "volume {} vs exact {}",
            w.volume(),
            exact
        );
    }

    #[test]
    fn yin_patch_area_fraction() {
        // The nominal Yin patch (θ ∈ [π/4, 3π/4], φ ∈ [−3π/4, 3π/4])
        // covers sin(π/4)·√2 … analytically: area = Δφ (cos π/4 − cos 3π/4)
        // = (3π/2)(√2) / (4π) of the sphere = 3√2/8 ≈ 0.5303.
        let w = ShellWeights::new(
            &Grid1D::new(2, 1.0 - 1e-9, 1.0, 0), // thin radial sliver
            &Grid1D::new(257, PI / 4.0, 3.0 * PI / 4.0, 0),
            &Grid1D::new(513, -3.0 * PI / 4.0, 3.0 * PI / 4.0, 0),
        );
        let st: f64 = w.colat.iter().sum();
        let sp: f64 = w.lon.iter().sum();
        let frac = st * sp / (4.0 * PI);
        let exact = 3.0 * 2.0_f64.sqrt() / 8.0;
        assert!(approx_eq(frac, exact, 1e-4), "frac {frac} vs {exact}");
    }

    #[test]
    fn at_matches_factor_product() {
        let w = ShellWeights::new(
            &Grid1D::new(4, 0.5, 1.0, 0),
            &Grid1D::new(5, 1.0, 2.0, 0),
            &Grid1D::new(6, -1.0, 1.0, 0),
        );
        assert!(approx_eq(w.at(1, 2, 3), w.radial[1] * w.colat[2] * w.lon[3], 1e-15));
    }

    #[test]
    #[should_panic(expected = "sample count")]
    fn integrate_checks_length() {
        let g = Grid1D::new(4, 0.0, 1.0, 0);
        integrate_1d(&g, &[1.0, 2.0]);
    }
}
