//! Uniform 1-D node grids with ghost extensions.
//!
//! Every mesh dimension in the workspace (radius, colatitude, longitude) is
//! a uniform node-centred grid: `n` owned nodes spanning `[min, max]`
//! inclusive, with `nghost` extra nodes continued at the same spacing on
//! each side for finite-difference halos.

/// A uniform 1-D grid of `n ≥ 2` nodes on `[min, max]`, with `nghost`
/// ghost nodes beyond each end.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid1D {
    n: usize,
    min: f64,
    max: f64,
    d: f64,
    nghost: usize,
}

impl Grid1D {
    /// Build a grid with `n` owned nodes on `[min, max]` and `nghost` ghost
    /// nodes per side.
    ///
    /// # Panics
    /// Panics if `n < 2` or `max <= min`.
    pub fn new(n: usize, min: f64, max: f64, nghost: usize) -> Self {
        assert!(n >= 2, "a Grid1D needs at least two nodes, got {n}");
        assert!(max > min, "degenerate grid extent [{min}, {max}]");
        let d = (max - min) / (n as f64 - 1.0);
        Grid1D { n, min, max, d, nghost }
    }

    /// Number of owned nodes (excluding ghosts).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the grid has no owned nodes — never, by construction;
    /// provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total node count including ghosts: `n + 2 * nghost`.
    #[inline]
    pub fn len_with_ghosts(&self) -> usize {
        self.n + 2 * self.nghost
    }

    /// Ghost layer width per side.
    #[inline]
    pub fn nghost(&self) -> usize {
        self.nghost
    }

    /// Node spacing.
    #[inline]
    pub fn spacing(&self) -> f64 {
        self.d
    }

    /// First owned coordinate.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Last owned coordinate.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coordinate of owned node `i ∈ [0, n)`.
    ///
    /// The endpoints are returned exactly to keep boundary logic robust.
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        debug_assert!(i < self.n);
        if i == 0 {
            self.min
        } else if i == self.n - 1 {
            self.max
        } else {
            self.min + self.d * i as f64
        }
    }

    /// Coordinate of a node in signed index space, where negative indices
    /// and indices `≥ n` address ghost nodes.
    #[inline]
    pub fn coord_signed(&self, i: isize) -> f64 {
        self.min + self.d * i as f64
    }

    /// Locate `x`: returns `(i, frac)` with `x = coord(i) + frac * d`,
    /// `0 ≤ frac < 1`, and `i` clamped to `[0, n − 2]` so that `(i, i + 1)`
    /// is always a valid owned interval. Returns `None` if `x` lies outside
    /// `[min, max]` by more than `tol` (in units of spacing).
    pub fn locate(&self, x: f64, tol: f64) -> Option<(usize, f64)> {
        let s = (x - self.min) / self.d;
        if s < -tol || s > (self.n as f64 - 1.0) + tol {
            return None;
        }
        let s = s.clamp(0.0, self.n as f64 - 1.0);
        let mut i = s.floor() as usize;
        if i >= self.n - 1 {
            i = self.n - 2;
        }
        Some((i, s - i as f64))
    }

    /// `true` iff `x` lies inside the owned span `[min, max]`, up to
    /// `tol` spacings of slack.
    #[inline]
    pub fn contains(&self, x: f64, tol: f64) -> bool {
        x >= self.min - tol * self.d && x <= self.max + tol * self.d
    }

    /// Iterator over the owned node coordinates.
    pub fn coords(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.n).map(move |i| self.coord(i))
    }

    /// A sub-grid of the owned nodes `[start, start + len)` with the same
    /// spacing and ghost width. Used by the domain decomposition: a rank's
    /// tile of the θ or φ dimension.
    pub fn subgrid(&self, start: usize, len: usize) -> Grid1D {
        assert!(len >= 2, "subgrid needs at least two nodes");
        assert!(start + len <= self.n, "subgrid [{start}, {}) out of range", start + len);
        Grid1D {
            n: len,
            min: self.min + self.d * start as f64,
            max: self.min + self.d * (start + len - 1) as f64,
            d: self.d,
            nghost: self.nghost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn coords_and_spacing() {
        let g = Grid1D::new(5, 0.0, 1.0, 2);
        assert_eq!(g.len(), 5);
        assert_eq!(g.len_with_ghosts(), 9);
        assert!(approx_eq(g.spacing(), 0.25, 1e-15));
        assert_eq!(g.coord(0), 0.0);
        assert_eq!(g.coord(4), 1.0);
        assert!(approx_eq(g.coord(2), 0.5, 1e-15));
        assert!(approx_eq(g.coord_signed(-1), -0.25, 1e-15));
        assert!(approx_eq(g.coord_signed(5), 1.25, 1e-15));
    }

    #[test]
    fn locate_interior_and_edges() {
        let g = Grid1D::new(5, 0.0, 1.0, 0);
        let (i, f) = g.locate(0.3, 0.0).unwrap();
        assert_eq!(i, 1);
        assert!(approx_eq(f, 0.2, 1e-12));
        // Exactly on a node.
        let (i, f) = g.locate(0.5, 0.0).unwrap();
        assert_eq!(i, 2);
        assert!(approx_eq(f, 0.0, 1e-12));
        // The right endpoint clamps to the last interval with frac 1.
        let (i, f) = g.locate(1.0, 0.0).unwrap();
        assert_eq!(i, 3);
        assert!(approx_eq(f, 1.0, 1e-12));
        // Out of range.
        assert!(g.locate(1.2, 0.0).is_none());
        assert!(g.locate(-0.1, 0.0).is_none());
        // Tolerance admits slightly-outside points.
        assert!(g.locate(-0.01, 0.1).is_some());
    }

    #[test]
    fn subgrid_preserves_geometry() {
        let g = Grid1D::new(11, 0.0, 1.0, 1);
        let s = g.subgrid(3, 4);
        assert_eq!(s.len(), 4);
        assert!(approx_eq(s.spacing(), g.spacing(), 1e-15));
        assert!(approx_eq(s.min(), 0.3, 1e-12));
        assert!(approx_eq(s.max(), 0.6, 1e-12));
        assert!(approx_eq(s.coord(1), g.coord(4), 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subgrid_bounds_checked() {
        Grid1D::new(5, 0.0, 1.0, 0).subgrid(3, 4);
    }

    #[test]
    fn contains_with_slack() {
        let g = Grid1D::new(3, -1.0, 1.0, 0);
        assert!(g.contains(0.0, 0.0));
        assert!(g.contains(-1.0, 0.0));
        assert!(!g.contains(1.5, 0.0));
        assert!(g.contains(1.5, 0.6)); // 0.6 spacings of slack = 0.6
    }

    #[test]
    fn coords_iterator_matches_coord() {
        let g = Grid1D::new(7, 2.0, 3.2, 0);
        let v: Vec<f64> = g.coords().collect();
        assert_eq!(v.len(), 7);
        for (i, &x) in v.iter().enumerate() {
            assert!(approx_eq(x, g.coord(i), 1e-15));
        }
    }
}
