//! Spherical polar coordinates `(r, θ, φ)` and the local orthonormal basis.
//!
//! Conventions follow the paper: `r` is the radius, `θ ∈ [0, π]` the
//! colatitude measured from the +z axis, `φ ∈ (−π, π]` the longitude
//! measured from the +x axis. The local right-handed orthonormal basis is
//! `(r̂, θ̂, φ̂)`.

use crate::vec3::Vec3;

/// A point in spherical polar coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphericalPoint {
    /// Radius.
    pub r: f64,
    /// Colatitude in `[0, π]`.
    pub theta: f64,
    /// Longitude in `(−π, π]`.
    pub phi: f64,
}

impl SphericalPoint {
    /// Construct from radius, colatitude and longitude.
    #[inline]
    pub const fn new(r: f64, theta: f64, phi: f64) -> Self {
        SphericalPoint { r, theta, phi }
    }

    /// Convert to Cartesian coordinates.
    #[inline]
    pub fn to_cartesian(self) -> Vec3 {
        let (st, ct) = self.theta.sin_cos();
        let (sp, cp) = self.phi.sin_cos();
        Vec3::new(self.r * st * cp, self.r * st * sp, self.r * ct)
    }

    /// Convert a Cartesian point to spherical coordinates.
    ///
    /// At the poles (`x = y = 0`) the longitude is conventionally 0.
    #[inline]
    pub fn from_cartesian(v: Vec3) -> Self {
        let r = v.norm();
        if r == 0.0 {
            return SphericalPoint::new(0.0, 0.0, 0.0);
        }
        let theta = (v.z / r).clamp(-1.0, 1.0).acos();
        let phi = if v.x == 0.0 && v.y == 0.0 { 0.0 } else { v.y.atan2(v.x) };
        SphericalPoint::new(r, theta, phi)
    }

    /// The local orthonormal basis `(r̂, θ̂, φ̂)` at this point, expressed in
    /// Cartesian components.
    #[inline]
    pub fn basis(self) -> SphericalBasis {
        SphericalBasis::at(self.theta, self.phi)
    }
}

/// The orthonormal spherical basis at a direction `(θ, φ)` on the sphere,
/// expressed in Cartesian components. Independent of radius.
#[derive(Debug, Clone, Copy)]
pub struct SphericalBasis {
    /// Radial unit vector r̂.
    pub e_r: Vec3,
    /// Colatitude unit vector θ̂ (southward).
    pub e_theta: Vec3,
    /// Longitude unit vector φ̂ (eastward).
    pub e_phi: Vec3,
}

impl SphericalBasis {
    /// Basis at colatitude `theta`, longitude `phi`.
    #[inline]
    pub fn at(theta: f64, phi: f64) -> Self {
        let (st, ct) = theta.sin_cos();
        let (sp, cp) = phi.sin_cos();
        SphericalBasis {
            e_r: Vec3::new(st * cp, st * sp, ct),
            e_theta: Vec3::new(ct * cp, ct * sp, -st),
            e_phi: Vec3::new(-sp, cp, 0.0),
        }
    }

    /// Express a vector with spherical components `(vr, vθ, vφ)` at this
    /// basis point as a Cartesian vector.
    #[inline]
    pub fn to_cartesian(&self, vr: f64, vtheta: f64, vphi: f64) -> Vec3 {
        self.e_r * vr + self.e_theta * vtheta + self.e_phi * vphi
    }

    /// Project a Cartesian vector onto this basis, returning spherical
    /// components `(vr, vθ, vφ)`.
    #[inline]
    pub fn from_cartesian(&self, v: Vec3) -> (f64, f64, f64) {
        (v.dot(self.e_r), v.dot(self.e_theta), v.dot(self.e_phi))
    }
}

/// Wrap a longitude into the canonical interval `(−π, π]`.
#[inline]
pub fn wrap_longitude(phi: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut p = phi % two_pi;
    if p <= -std::f64::consts::PI {
        p += two_pi;
    } else if p > std::f64::consts::PI {
        p -= two_pi;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn cartesian_round_trip() {
        for &(r, t, p) in &[
            (1.0, FRAC_PI_2, 0.0),
            (2.5, FRAC_PI_4, 1.0),
            (0.35, 3.0, -2.5),
            (1.0, 0.1, PI - 1e-6),
        ] {
            let s = SphericalPoint::new(r, t, p);
            let back = SphericalPoint::from_cartesian(s.to_cartesian());
            assert!(approx_eq(back.r, r, 1e-12), "r mismatch at {t},{p}");
            assert!(approx_eq(back.theta, t, 1e-10));
            assert!(approx_eq(back.phi, p, 1e-10));
        }
    }

    #[test]
    fn poles_and_origin_are_handled() {
        let north = SphericalPoint::from_cartesian(Vec3::new(0.0, 0.0, 2.0));
        assert!(approx_eq(north.theta, 0.0, 1e-15));
        assert_eq!(north.phi, 0.0);
        let south = SphericalPoint::from_cartesian(Vec3::new(0.0, 0.0, -1.0));
        assert!(approx_eq(south.theta, PI, 1e-15));
        let origin = SphericalPoint::from_cartesian(Vec3::ZERO);
        assert_eq!(origin.r, 0.0);
    }

    #[test]
    fn basis_is_orthonormal_and_right_handed() {
        for &(t, p) in &[(FRAC_PI_2, 0.0), (0.3, 2.0), (2.8, -3.0), (FRAC_PI_4, FRAC_PI_4)] {
            let b = SphericalBasis::at(t, p);
            assert!(approx_eq(b.e_r.norm(), 1.0, 1e-14));
            assert!(approx_eq(b.e_theta.norm(), 1.0, 1e-14));
            assert!(approx_eq(b.e_phi.norm(), 1.0, 1e-14));
            assert!(approx_eq(b.e_r.dot(b.e_theta), 0.0, 1e-14));
            assert!(approx_eq(b.e_r.dot(b.e_phi), 0.0, 1e-14));
            assert!(approx_eq(b.e_theta.dot(b.e_phi), 0.0, 1e-14));
            // Right-handed: r̂ × θ̂ = φ̂.
            let c = b.e_r.cross(b.e_theta);
            assert!((c - b.e_phi).norm() < 1e-14);
        }
    }

    #[test]
    fn basis_round_trips_vectors() {
        let b = SphericalBasis::at(1.1, -0.7);
        let v = b.to_cartesian(0.5, -1.25, 2.0);
        let (vr, vt, vp) = b.from_cartesian(v);
        assert!(approx_eq(vr, 0.5, 1e-13));
        assert!(approx_eq(vt, -1.25, 1e-13));
        assert!(approx_eq(vp, 2.0, 1e-13));
    }

    #[test]
    fn wrap_longitude_canonical_interval() {
        assert!(approx_eq(wrap_longitude(3.0 * PI), PI, 1e-12));
        assert!(approx_eq(wrap_longitude(-3.0 * PI), PI, 1e-12));
        assert!(approx_eq(wrap_longitude(0.5), 0.5, 1e-15));
        assert!(approx_eq(wrap_longitude(PI + 0.1), -PI + 0.1, 1e-12));
        let w = wrap_longitude(-PI);
        assert!(w > -PI - 1e-15 && approx_eq(w.abs(), PI, 1e-12));
    }
}
