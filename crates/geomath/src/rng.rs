//! Deterministic random-number helpers.
//!
//! Simulations must be exactly reproducible: the same seed gives the same
//! initial perturbation regardless of rank layout. The helpers here
//! derive per-purpose seeds from a run seed so that, e.g., the temperature
//! perturbation at a given global grid node is identical whether the node
//! is owned by one rank or another.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Split a master seed into an independent stream for (`purpose`, `index`).
///
/// Uses SplitMix64 finalization steps so nearby inputs give uncorrelated
/// seeds.
pub fn derive_seed(master: u64, purpose: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(purpose.wrapping_add(1)))
        .wrapping_add(0xBF58_476D_1CE4_E5B9_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG for (`master`, `purpose`, `index`).
pub fn rng_for(master: u64, purpose: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, purpose, index))
}

/// A deterministic value in `[-amplitude, amplitude]` attached to a global
/// grid node, independent of domain decomposition.
///
/// `node` packs the global `(panel, i, j, k)` indices; callers use
/// [`node_key`].
pub fn node_noise(master: u64, purpose: u64, node: u64, amplitude: f64) -> f64 {
    // One draw from a per-node stream: cheap and layout-independent.
    let mut rng = rng_for(master, purpose, node);
    rng.gen_range(-amplitude..=amplitude)
}

/// Pack global node indices into a single key for [`node_noise`].
///
/// Panics in debug builds if any index exceeds its field width
/// (20 bits for `i`/`j`/`k`, 4 bits for `panel`) — vastly larger than any
/// grid this workspace builds.
#[inline]
pub fn node_key(panel: usize, i: usize, j: usize, k: usize) -> u64 {
    debug_assert!(panel < 16 && i < (1 << 20) && j < (1 << 20) && k < (1 << 20));
    ((panel as u64) << 60) | ((i as u64) << 40) | ((j as u64) << 20) | k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_seed(42, 1, 7), derive_seed(42, 1, 7));
        assert_ne!(derive_seed(42, 1, 7), derive_seed(42, 1, 8));
        assert_ne!(derive_seed(42, 1, 7), derive_seed(42, 2, 7));
        assert_ne!(derive_seed(42, 1, 7), derive_seed(43, 1, 7));
    }

    #[test]
    fn node_noise_is_bounded_and_reproducible() {
        for idx in 0..100 {
            let v = node_noise(7, 0, idx, 0.01);
            assert!(v.abs() <= 0.01);
            assert_eq!(v, node_noise(7, 0, idx, 0.01));
        }
    }

    #[test]
    fn node_key_is_injective_on_smoke_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for panel in 0..2 {
            for i in [0usize, 1, 100] {
                for j in [0usize, 5, 300] {
                    for k in [0usize, 2, 1000] {
                        assert!(seen.insert(node_key(panel, i, j, k)));
                    }
                }
            }
        }
    }

    #[test]
    fn noise_has_both_signs() {
        let vals: Vec<f64> = (0..64).map(|i| node_noise(1, 2, i, 1.0)).collect();
        assert!(vals.iter().any(|&v| v > 0.0));
        assert!(vals.iter().any(|&v| v < 0.0));
    }
}
