//! Deterministic random-number generation, implemented in-repo.
//!
//! Simulations must be exactly reproducible: the same seed gives the same
//! initial perturbation regardless of rank layout, build host, or crate
//! graph. To keep the workspace hermetic (no registry dependencies) this
//! module carries its own generator instead of `rand`:
//!
//! * [`SplitMix64`] — a tiny 64-bit mixer used only to expand a `u64`
//!   seed into generator state (the standard seeding procedure
//!   recommended by the xoshiro authors).
//! * [`DetRng`] — xoshiro256\*\* (Blackman & Vigna), a 256-bit-state
//!   all-purpose generator with a 2^256 − 1 period. Not cryptographic;
//!   exactly right for perturbation noise and Monte-Carlo scans.
//!
//! The stream produced by a given seed is part of the repo's compatibility
//! surface: checkpointed runs and golden tests depend on it. Any change
//! here is a breaking change to reproducibility and must be called out.
//!
//! The helpers below derive per-purpose seeds from a run seed so that,
//! e.g., the temperature perturbation at a given global grid node is
//! identical whether the node is owned by one rank or another.

/// SplitMix64: expands a 64-bit seed into a sequence of well-mixed words.
///
/// Used for seeding [`DetRng`]; also usable directly where a single
/// mixing step is all that is needed (see [`derive_seed`]).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a SplitMix64 sequence from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's deterministic generator.
///
/// State is seeded through [`SplitMix64`] so that any `u64` — including 0
/// — yields a healthy state (xoshiro's one illegal state, all-zeros,
/// cannot be produced this way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the generator from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        DetRng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; the low bits of xoshiro** are weakest.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform `f64` in `[lo, hi]` (closed interval, like
    /// `rand`'s `gen_range(lo..=hi)` up to rounding at the endpoint).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift with a
    /// rejection step, so the distribution is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire 2019: unbiased bounded integers without division on the
        // hot path.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        // Use the top bit (see `next_f64` on bit quality).
        self.next_u64() >> 63 == 1
    }
}

/// Split a master seed into an independent stream for (`purpose`, `index`).
///
/// Uses SplitMix64 finalization steps so nearby inputs give uncorrelated
/// seeds.
pub fn derive_seed(master: u64, purpose: u64, index: u64) -> u64 {
    let z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(purpose.wrapping_add(1)))
        .wrapping_add(0xBF58_476D_1CE4_E5B9_u64.wrapping_mul(index.wrapping_add(1)));
    // One SplitMix64 output step finalizes the combined key.
    SplitMix64::new(z.wrapping_sub(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// A deterministic RNG for (`master`, `purpose`, `index`).
pub fn rng_for(master: u64, purpose: u64, index: u64) -> DetRng {
    DetRng::seed_from_u64(derive_seed(master, purpose, index))
}

/// A deterministic value in `[-amplitude, amplitude]` attached to a global
/// grid node, independent of domain decomposition.
///
/// `node` packs the global `(panel, i, j, k)` indices; callers use
/// [`node_key`].
pub fn node_noise(master: u64, purpose: u64, node: u64, amplitude: f64) -> f64 {
    // One draw from a per-node stream: cheap and layout-independent.
    let mut rng = rng_for(master, purpose, node);
    rng.range_f64(-amplitude, amplitude)
}

/// Pack global node indices into a single key for [`node_noise`].
///
/// Panics in debug builds if any index exceeds its field width
/// (20 bits for `i`/`j`/`k`, 4 bits for `panel`) — vastly larger than any
/// grid this workspace builds.
#[inline]
pub fn node_key(panel: usize, i: usize, j: usize, k: usize) -> u64 {
    debug_assert!(panel < 16 && i < (1 << 20) && j < (1 << 20) && k < (1 << 20));
    ((panel as u64) << 60) | ((i as u64) << 40) | ((j as u64) << 20) | k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c (Vigna). Pins the seeding procedure forever.
        let mut sm = SplitMix64::new(1234567);
        let expect: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_gives_bit_identical_stream() {
        let mut a = DetRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = DetRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And the f64 projection is bit-identical too.
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_healthy() {
        let mut r = DetRng::seed_from_u64(0);
        // All-zero xoshiro state would emit only zeros; SplitMix64
        // seeding must prevent that.
        assert!((0..16).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_is_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(5);
        let n = 100_000;
        let mut bins = [0usize; 10];
        for _ in 0..n {
            bins[(r.next_f64() * 10.0) as usize] += 1;
        }
        for (i, &c) in bins.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bin {i}: {frac}");
        }
    }

    #[test]
    fn below_is_unbiased_on_small_moduli() {
        let mut r = DetRng::seed_from_u64(11);
        let n = 90_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[r.below(3) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.01, "fraction {frac}");
        }
    }

    #[test]
    fn range_usize_covers_and_stays_in_bounds() {
        let mut r = DetRng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.range_usize(2, 9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_seed(42, 1, 7), derive_seed(42, 1, 7));
        assert_ne!(derive_seed(42, 1, 7), derive_seed(42, 1, 8));
        assert_ne!(derive_seed(42, 1, 7), derive_seed(42, 2, 7));
        assert_ne!(derive_seed(42, 1, 7), derive_seed(43, 1, 7));
    }

    #[test]
    fn node_noise_is_bounded_and_reproducible() {
        for idx in 0..100 {
            let v = node_noise(7, 0, idx, 0.01);
            assert!(v.abs() <= 0.01);
            assert_eq!(v.to_bits(), node_noise(7, 0, idx, 0.01).to_bits());
        }
    }

    #[test]
    fn node_key_is_injective_on_smoke_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for panel in 0..2 {
            for i in [0usize, 1, 100] {
                for j in [0usize, 5, 300] {
                    for k in [0usize, 2, 1000] {
                        assert!(seen.insert(node_key(panel, i, j, k)));
                    }
                }
            }
        }
    }

    #[test]
    fn noise_has_both_signs() {
        let vals: Vec<f64> = (0..64).map(|i| node_noise(1, 2, i, 1.0)).collect();
        assert!(vals.iter().any(|&v| v > 0.0));
        assert!(vals.iter().any(|&v| v < 0.0));
    }
}
