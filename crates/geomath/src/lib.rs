//! Spherical geometry and math substrate for the Yin-Yang geodynamo code.
//!
//! This crate holds everything that is "pure math": 3-vectors, spherical
//! coordinate transforms, the Yin↔Yang coordinate/vector-basis transform of
//! Kageyama et al. (eq. 1 of the SC2004 paper), 1-D grid construction,
//! trapezoidal quadrature on spherical shells, a generic classical
//! Runge–Kutta-4 integrator, and deterministic RNG helpers.
//!
//! Nothing in here knows about fields, meshes, or MPI-style communication;
//! the higher crates (`yy-field`, `yy-mesh`, `yy-mhd`, `yycore`) build on
//! these primitives.
//!
//! ```
//! use geomath::{SphericalPoint, YinYangMap, approx_eq};
//!
//! // The Yin↔Yang transform is an involution: applying it twice is the
//! // identity (paper eq. 1).
//! let map = YinYangMap::new();
//! let p = SphericalPoint::new(1.0, 1.1, -0.4);
//! let back = map.transform_point(map.transform_point(p));
//! assert!(approx_eq(back.theta, p.theta, 1e-10));
//! ```
#![warn(missing_docs)]

pub mod grid1d;
pub mod quadrature;
pub mod rk4;
pub mod rng;
pub mod spherical;
pub mod vec3;
pub mod yinyang;

pub use grid1d::Grid1D;
pub use spherical::{SphericalBasis, SphericalPoint};
pub use vec3::Vec3;
pub use yinyang::{yang_from_yin_point, yin_from_yang_point, YinYangMap};

/// Machine-epsilon-scale tolerance used by the geometric predicates in this
/// crate. Double precision round-off through a handful of trig calls stays
/// well below this.
pub const GEOM_EPS: f64 = 1e-12;

/// Relative comparison helper used across the workspace's tests.
///
/// Returns `true` when `a` and `b` agree to within `tol` relative to the
/// larger magnitude (or absolutely, when both are tiny).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(0.0, 1e-15, 1e-12));
        assert!(approx_eq(-2.0, -2.0, 0.0));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq(1e-9, 2e-9, 1e-12));
    }
}
