//! The Yin↔Yang coordinate transform (eq. 1 of the paper).
//!
//! The Yang grid's virtual north-south axis lies on the equator of the Yin
//! grid's coordinates. In Cartesian components the relation is
//!
//! ```text
//! (xe, ye, ze) = (−xn, zn, yn)        and        (xn, yn, zn) = (−xe, ze, ye)
//! ```
//!
//! where subscript `n` is Yin ("n-grid") and `e` is Yang ("e-grid"). The
//! forward and inverse transforms have *the same form* — the map is an
//! involution — which is the complementarity the paper exploits: one routing
//! table and one interpolation routine serve both directions.
//!
//! Tangent vectors transform with the same orthogonal matrix. The radial
//! component of a vector field is invariant; the horizontal components
//! `(vθ, vφ)` rotate by a position-dependent 2×2 orthogonal matrix returned
//! by [`YinYangMap::tangent_rotation`].

use crate::spherical::{wrap_longitude, SphericalBasis, SphericalPoint};
use crate::vec3::Vec3;

/// Apply the involutive Yin↔Yang Cartesian map `(x, y, z) ↦ (−x, z, y)`.
#[inline]
pub fn yinyang_cartesian(v: Vec3) -> Vec3 {
    Vec3::new(-v.x, v.z, v.y)
}

/// Coordinates of a Yin point expressed in the Yang system.
#[inline]
pub fn yang_from_yin_point(p: SphericalPoint) -> SphericalPoint {
    let q = SphericalPoint::from_cartesian(yinyang_cartesian(p.to_cartesian()));
    SphericalPoint::new(q.r, q.theta, wrap_longitude(q.phi))
}

/// Coordinates of a Yang point expressed in the Yin system.
///
/// Identical to [`yang_from_yin_point`] because the map is an involution;
/// the separate name keeps call sites self-documenting.
#[inline]
pub fn yin_from_yang_point(p: SphericalPoint) -> SphericalPoint {
    yang_from_yin_point(p)
}

/// The Yin↔Yang transform packaged with its vector-component rotation.
///
/// `YinYangMap` is stateless; it exists so call sites read
/// `map.transform_point(p)` rather than a bag of free functions, and so the
/// mesh layer can hold it as a field.
#[derive(Debug, Clone, Copy, Default)]
pub struct YinYangMap;

impl YinYangMap {
    /// The (stateless) transform.
    pub const fn new() -> Self {
        YinYangMap
    }

    /// Express a point of one system in the other system.
    #[inline]
    pub fn transform_point(&self, p: SphericalPoint) -> SphericalPoint {
        yang_from_yin_point(p)
    }

    /// Transform spherical vector components `(vr, vθ, vφ)` attached at
    /// `(θ, φ)` of system A into components in system B at the image point.
    ///
    /// The physical vector is unchanged; only the component representation
    /// rotates. `vr` maps to `vr` exactly.
    #[inline]
    pub fn transform_vector(
        &self,
        at: SphericalPoint,
        vr: f64,
        vtheta: f64,
        vphi: f64,
    ) -> (f64, f64, f64) {
        let basis_a = SphericalBasis::at(at.theta, at.phi);
        let cart_a = basis_a.to_cartesian(vr, vtheta, vphi);
        // A physical vector with components u in A-Cartesian axes has
        // components M·u in B-Cartesian axes (M orthogonal, involutive).
        let cart_b = yinyang_cartesian(cart_a);
        let image = self.transform_point(at);
        let basis_b = SphericalBasis::at(image.theta, image.phi);
        basis_b.from_cartesian(cart_b)
    }

    /// The 2×2 rotation taking tangent components `(vθ, vφ)` at `(θ, φ)` of
    /// system A to tangent components at the image point in system B:
    ///
    /// ```text
    /// [vθ']   [m00 m01] [vθ]
    /// [vφ'] = [m10 m11] [vφ]
    /// ```
    ///
    /// The matrix is orthogonal with determinant +1: the Cartesian map
    /// `(x, y, z) ↦ (−x, z, y)` has determinant +1 (a half-turn about the
    /// axis `(0, 1, 1)/√2`), so it restricts to a proper rotation of each
    /// tangent plane. The mesh layer precomputes this matrix for every
    /// overset boundary point.
    pub fn tangent_rotation(&self, theta: f64, phi: f64) -> [[f64; 2]; 2] {
        let at = SphericalPoint::new(1.0, theta, phi);
        let basis_a = SphericalBasis::at(theta, phi);
        let image = self.transform_point(at);
        let basis_b = SphericalBasis::at(image.theta, image.phi);
        // Columns: images of θ̂_A and φ̂_A projected on (θ̂_B, φ̂_B).
        let t_img = yinyang_cartesian(basis_a.e_theta);
        let p_img = yinyang_cartesian(basis_a.e_phi);
        [
            [t_img.dot(basis_b.e_theta), p_img.dot(basis_b.e_theta)],
            [t_img.dot(basis_b.e_phi), p_img.dot(basis_b.e_phi)],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn sample_points() -> Vec<SphericalPoint> {
        vec![
            SphericalPoint::new(1.0, FRAC_PI_2, 0.0),
            SphericalPoint::new(0.6, FRAC_PI_4, 1.3),
            SphericalPoint::new(1.0, 2.0, -2.0),
            SphericalPoint::new(0.35, 1.1, 3.0),
            SphericalPoint::new(1.0, FRAC_PI_2, FRAC_PI_2),
        ]
    }

    #[test]
    fn transform_is_an_involution() {
        let map = YinYangMap::new();
        for p in sample_points() {
            let q = map.transform_point(map.transform_point(p));
            assert!(approx_eq(q.r, p.r, 1e-12));
            assert!(approx_eq(q.theta, p.theta, 1e-10));
            assert!(
                approx_eq(wrap_longitude(q.phi - p.phi), 0.0, 1e-10),
                "phi {} vs {}",
                q.phi,
                p.phi
            );
        }
    }

    #[test]
    fn yang_axis_sits_on_yin_equator() {
        // The Yang north pole (θe = 0) corresponds to the Yin point
        // (θn, φn) = (π/2, π/2): M(0,0,1) = (0,1,0) in Yang frame means the
        // Yin direction mapping TO Yang-north is M⁻¹(0,0,1) = (0,1,0).
        let p = SphericalPoint::new(1.0, FRAC_PI_2, FRAC_PI_2);
        let q = yang_from_yin_point(p);
        assert!(approx_eq(q.theta, 0.0, 1e-12), "theta = {}", q.theta);
    }

    #[test]
    fn paper_mapping_of_yin_boundary_midpoint() {
        // Worked example from the design discussion: the Yin boundary point
        // (θ = π/4, φ = 0) maps onto (θ' = π/2, φ' = 3π/4) in Yang
        // coordinates — exactly on the nominal Yang boundary, which is why
        // the component grids carry extension cells.
        let q = yang_from_yin_point(SphericalPoint::new(1.0, FRAC_PI_4, 0.0));
        assert!(approx_eq(q.theta, FRAC_PI_2, 1e-12));
        assert!(approx_eq(q.phi, 3.0 * PI / 4.0, 1e-12));
    }

    #[test]
    fn vector_transform_preserves_norm_and_radial_part() {
        let map = YinYangMap::new();
        for p in sample_points() {
            let (vr, vt, vp) = (0.7, -1.2, 0.4);
            let (wr, wt, wp) = map.transform_vector(p, vr, vt, vp);
            assert!(approx_eq(wr, vr, 1e-12), "vr not invariant");
            let n_in = (vr * vr + vt * vt + vp * vp).sqrt();
            let n_out = (wr * wr + wt * wt + wp * wp).sqrt();
            assert!(approx_eq(n_in, n_out, 1e-12));
        }
    }

    #[test]
    fn vector_transform_round_trips() {
        let map = YinYangMap::new();
        for p in sample_points() {
            let (vr, vt, vp) = (0.1, 2.0, -0.9);
            let image = map.transform_point(p);
            let (wr, wt, wp) = map.transform_vector(p, vr, vt, vp);
            let (ur, ut, up) = map.transform_vector(image, wr, wt, wp);
            assert!(approx_eq(ur, vr, 1e-11));
            assert!(approx_eq(ut, vt, 1e-11));
            assert!(approx_eq(up, vp, 1e-11));
        }
    }

    #[test]
    fn tangent_rotation_is_a_proper_rotation() {
        let map = YinYangMap::new();
        for p in sample_points() {
            let m = map.tangent_rotation(p.theta, p.phi);
            let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
            assert!(approx_eq(det, 1.0, 1e-10), "det = {det}");
            // Rows orthonormal.
            assert!(approx_eq(m[0][0] * m[0][0] + m[0][1] * m[0][1], 1.0, 1e-10));
            assert!(approx_eq(m[1][0] * m[1][0] + m[1][1] * m[1][1], 1.0, 1e-10));
            assert!(approx_eq(m[0][0] * m[1][0] + m[0][1] * m[1][1], 0.0, 1e-10));
        }
    }

    #[test]
    fn tangent_rotation_matches_full_vector_transform() {
        let map = YinYangMap::new();
        for p in sample_points() {
            let m = map.tangent_rotation(p.theta, p.phi);
            let (vt, vp) = (1.7, -0.3);
            let (_, wt, wp) = map.transform_vector(p, 0.0, vt, vp);
            assert!(approx_eq(m[0][0] * vt + m[0][1] * vp, wt, 1e-11));
            assert!(approx_eq(m[1][0] * vt + m[1][1] * vp, wp, 1e-11));
        }
    }
}
