//! Classical 4th-order Runge–Kutta on flat state vectors.
//!
//! The paper integrates the MHD system with classical RK4. The solver
//! crates use the same Butcher tableau but drive it through their own
//! staged loop (they must refill ghost zones between stages); this module
//! provides the reference implementation used for convergence testing and
//! for small ODE work (e.g. tracer advection in the examples), plus the
//! tableau constants shared with the PDE integrator.

/// RK4 stage weights `(b1, b2, b3, b4) = (1/6, 1/3, 1/3, 1/6)`.
pub const RK4_WEIGHTS: [f64; 4] = [1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0];

/// RK4 stage abscissae `(0, 1/2, 1/2, 1)` — the fraction of `dt` at which
/// each stage's state is evaluated.
pub const RK4_NODES: [f64; 4] = [0.0, 0.5, 0.5, 1.0];

/// Advance `y` by one RK4 step of size `dt` under `rhs(t, y, dydt)`.
///
/// `rhs` must write the derivative of every component into `dydt`.
/// Scratch storage is caller-provided via `work` (4 stage slopes + 1 stage
/// state, each `y.len()` long) so repeated stepping does not allocate.
pub fn rk4_step<F>(t: f64, dt: f64, y: &mut [f64], work: &mut Rk4Work, mut rhs: F)
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = y.len();
    work.ensure(n);
    let Rk4Work { k1, k2, k3, k4, stage } = work;

    rhs(t, y, k1);
    for i in 0..n {
        stage[i] = y[i] + 0.5 * dt * k1[i];
    }
    rhs(t + 0.5 * dt, stage, k2);
    for i in 0..n {
        stage[i] = y[i] + 0.5 * dt * k2[i];
    }
    rhs(t + 0.5 * dt, stage, k3);
    for i in 0..n {
        stage[i] = y[i] + dt * k3[i];
    }
    rhs(t + dt, stage, k4);
    for i in 0..n {
        y[i] += dt
            * (RK4_WEIGHTS[0] * k1[i]
                + RK4_WEIGHTS[1] * k2[i]
                + RK4_WEIGHTS[2] * k3[i]
                + RK4_WEIGHTS[3] * k4[i]);
    }
}

/// Reusable scratch buffers for [`rk4_step`].
#[derive(Debug, Default, Clone)]
pub struct Rk4Work {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    stage: Vec<f64>,
}

impl Rk4Work {
    /// Allocate buffers for state vectors of length `n`.
    pub fn new(n: usize) -> Self {
        let mut w = Rk4Work::default();
        w.ensure(n);
        w
    }

    fn ensure(&mut self, n: usize) {
        for buf in [&mut self.k1, &mut self.k2, &mut self.k3, &mut self.k4, &mut self.stage] {
            if buf.len() != n {
                buf.resize(n, 0.0);
            }
        }
    }
}

/// Integrate from `t0` to `t1` in `steps` equal RK4 steps.
pub fn rk4_integrate<F>(t0: f64, t1: f64, steps: usize, y: &mut [f64], rhs: F)
where
    F: FnMut(f64, &[f64], &mut [f64]) + Copy,
{
    assert!(steps > 0);
    let dt = (t1 - t0) / steps as f64;
    let mut work = Rk4Work::new(y.len());
    let mut t = t0;
    for _ in 0..steps {
        rk4_step(t, dt, y, &mut work, rhs);
        t += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn exponential_decay_exact_to_fourth_order() {
        // y' = −y, y(0) = 1 → y(1) = e⁻¹.
        let run = |steps: usize| {
            let mut y = [1.0];
            rk4_integrate(0.0, 1.0, steps, &mut y, |_, y, dy| dy[0] = -y[0]);
            (y[0] - (-1.0_f64).exp()).abs()
        };
        let (e1, e2) = (run(10), run(20));
        let rate = (e1 / e2).log2();
        assert!(rate > 3.9 && rate < 4.2, "convergence rate {rate}");
    }

    #[test]
    fn harmonic_oscillator_conserves_energy_well() {
        // y'' = −y as a system; RK4 has tiny energy drift per period.
        let mut y = [1.0, 0.0];
        rk4_integrate(0.0, 2.0 * std::f64::consts::PI, 200, &mut y, |_, y, dy| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        assert!(approx_eq(y[0], 1.0, 1e-7));
        assert!(approx_eq(y[1], 0.0, 1e-7));
    }

    #[test]
    fn time_dependent_rhs_uses_stage_times() {
        // y' = t → y(1) = y(0) + 1/2, exactly reproduced by RK4
        // only if the stage times are fed correctly.
        let mut y = [0.0];
        let mut work = Rk4Work::new(1);
        rk4_step(0.0, 1.0, &mut y, &mut work, |t, _, dy| dy[0] = t);
        assert!(approx_eq(y[0], 0.5, 1e-14));
    }

    #[test]
    fn work_buffers_resize_on_demand() {
        let mut work = Rk4Work::default();
        let mut y = vec![1.0; 7];
        rk4_step(0.0, 0.1, &mut y, &mut work, |_, y, dy| {
            for i in 0..y.len() {
                dy[i] = -y[i];
            }
        });
        assert!(y.iter().all(|&v| v < 1.0 && v > 0.89));
    }

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = RK4_WEIGHTS.iter().sum();
        assert!(approx_eq(s, 1.0, 1e-15));
    }
}
