//! Property tests of the in-repo PRNG, run on the `yy-testkit` harness
//! (which is itself built on this generator — the dev-dependency cycle
//! is deliberate and exercises both sides).

use geomath::rng::{derive_seed, node_noise, DetRng};
use geomath::spherical::wrap_longitude;
use yy_testkit::{check, tk_assert, tk_assert_eq};

#[test]
fn streams_are_reproducible_for_any_seed() {
    check(
        "streams_are_reproducible_for_any_seed",
        |g| g.below(u64::MAX),
        |&seed| {
            let mut a = DetRng::seed_from_u64(seed);
            let mut b = DetRng::seed_from_u64(seed);
            for _ in 0..64 {
                tk_assert_eq!(a.next_u64(), b.next_u64());
            }
            Ok(())
        },
    );
}

#[test]
fn range_f64_respects_arbitrary_bounds() {
    check(
        "range_f64_respects_arbitrary_bounds",
        |g| {
            let lo = g.range_f64(-1e9, 1e9);
            let width = g.range_f64(0.0, 1e9);
            let seed = g.below(u64::MAX);
            (lo, lo + width, seed)
        },
        |&(lo, hi, seed)| {
            let mut rng = DetRng::seed_from_u64(seed);
            for _ in 0..100 {
                let v = rng.range_f64(lo, hi);
                tk_assert!((lo..=hi).contains(&v), "{v} outside [{lo}, {hi}]");
            }
            Ok(())
        },
    );
}

#[test]
fn below_is_always_in_range() {
    check(
        "below_is_always_in_range",
        |g| (g.below(u64::MAX - 1) + 1, g.below(u64::MAX)),
        |&(n, seed)| {
            let mut rng = DetRng::seed_from_u64(seed);
            for _ in 0..100 {
                tk_assert!(rng.below(n) < n);
            }
            Ok(())
        },
    );
}

#[test]
fn derived_seeds_do_not_collide_across_neighbours() {
    check(
        "derived_seeds_do_not_collide_across_neighbours",
        |g| (g.below(u64::MAX), g.below(1 << 20), g.below(1 << 20)),
        |&(master, purpose, index)| {
            let here = derive_seed(master, purpose, index);
            tk_assert!(here != derive_seed(master, purpose, index + 1), "index collision");
            tk_assert!(here != derive_seed(master, purpose + 1, index), "purpose collision");
            tk_assert!(here != derive_seed(master.wrapping_add(1), purpose, index));
            Ok(())
        },
    );
}

#[test]
fn node_noise_is_bounded_and_seed_stable() {
    check(
        "node_noise_is_bounded_and_seed_stable",
        |g| (g.below(u64::MAX), g.below(8), g.below(u64::MAX), g.range_f64(0.0, 10.0)),
        |&(master, purpose, node, amp)| {
            let v = node_noise(master, purpose, node, amp);
            tk_assert!(v.abs() <= amp, "|{v}| > {amp}");
            tk_assert_eq!(v.to_bits(), node_noise(master, purpose, node, amp).to_bits());
            Ok(())
        },
    );
}

#[test]
fn wrap_longitude_lands_in_principal_range_and_is_idempotent() {
    check(
        "wrap_longitude_lands_in_principal_range_and_is_idempotent",
        |g| g.range_f64(-50.0, 50.0),
        |&phi| {
            let w = wrap_longitude(phi);
            tk_assert!(
                (-std::f64::consts::PI..=std::f64::consts::PI).contains(&w),
                "wrapped {w}"
            );
            tk_assert!((wrap_longitude(w) - w).abs() < 1e-12, "not idempotent at {phi}");
            // Same angle mod 2π.
            let diff = (phi - w) / (2.0 * std::f64::consts::PI);
            tk_assert!((diff - diff.round()).abs() < 1e-9, "not congruent at {phi}");
            Ok(())
        },
    );
}
