//! Deterministic property-test harness.
//!
//! A hermetic replacement for the `proptest` dependency: no registry
//! crates, no persistence files, no time- or pointer-derived entropy.
//! Every case is generated from a seed derived as
//! `derive_seed(master, fnv1a(property name), case index)`, so a failure
//! report identifies the exact case forever — across machines, layouts
//! and parallel test threads.
//!
//! ```
//! use yy_testkit::{check, tk_assert};
//!
//! check("addition_commutes", |g| (g.range_f64(-1e6, 1e6), g.range_f64(-1e6, 1e6)), |&(a, b)| {
//!     tk_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```
//!
//! On failure the harness panics with the property name, case index,
//! case seed, and the generated input, plus a one-line replay recipe:
//! set `YY_TESTKIT_REPLAY=<case seed>` and re-run the one test. The
//! iteration budget is fixed per call site (default
//! [`DEFAULT_CASES`]) and can be scaled globally with
//! `YY_TESTKIT_CASES` for soak runs.
//!
//! There is no shrinking: cases are cheap and seeds are replayable, so
//! the debugging loop is "replay the failing seed under a debugger"
//! rather than "minimize the input". Generators should therefore bias
//! toward small cases on their own (`Gen::size` helps).

pub use geomath::rng::{derive_seed, DetRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Case generator handed to the generation closure: the deterministic
/// RNG plus sizing helpers for collection-valued cases.
pub struct Gen {
    rng: DetRng,
}

impl Gen {
    /// Uniform `f64` in `[lo, hi]`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_usize(lo, hi)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.next_bool()
    }

    /// A collection length in `[min_len, max_len]`.
    pub fn size(&mut self, min_len: usize, max_len: usize) -> usize {
        self.rng.range_usize(min_len, max_len + 1)
    }

    /// A `Vec<f64>` with uniform entries in `[lo, hi]` and length in
    /// `[min_len, max_len]`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.size(min_len, max_len);
        (0..n).map(|_| self.range_f64(lo, hi)).collect()
    }

    /// A `Vec<u64>` with uniform entries in `[0, below)` and length in
    /// `[min_len, max_len]`.
    pub fn vec_u64(&mut self, below: u64, min_len: usize, max_len: usize) -> Vec<u64> {
        let n = self.size(min_len, max_len);
        (0..n).map(|_| self.below(below)).collect()
    }

    /// Direct access to the underlying stream for custom generators.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

/// Configuration for one property run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases (before the `YY_TESTKIT_CASES` scale).
    pub cases: u32,
    /// Master seed; the per-case seed is derived from it, the property
    /// name, and the case index.
    pub master_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: DEFAULT_CASES, master_seed: 0x5EED_0F_6E0D_15A0 }
    }
}

impl Config {
    /// A config with a custom case budget.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

/// FNV-1a, used to fold the property name into the seed derivation.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325_u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Effective case budget: the configured count scaled by
/// `YY_TESTKIT_CASES` (an absolute override) when set.
fn effective_cases(cfg: &Config) -> u32 {
    match std::env::var("YY_TESTKIT_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
        Some(n) => n.max(1),
        None => cfg.cases,
    }
}

/// Parse `YY_TESTKIT_REPLAY` (decimal or 0x-hex case seed). An
/// unparseable value panics rather than silently running the normal
/// budget: the caller asked for a replay and must get one.
fn replay_seed() -> Option<u64> {
    let raw = std::env::var("YY_TESTKIT_REPLAY").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    };
    match parsed {
        Some(seed) => Some(seed),
        None => panic!("YY_TESTKIT_REPLAY={raw:?} is not a decimal or 0x-hex u64 case seed"),
    }
}

/// Run one generated case; `Err` carries the property's failure message.
fn run_case<T: std::fmt::Debug>(
    name: &str,
    case_seed: u64,
    case_label: &str,
    generate: &mut impl FnMut(&mut Gen) -> T,
    property: &mut impl FnMut(&T) -> Result<(), String>,
) {
    let mut g = Gen { rng: DetRng::seed_from_u64(case_seed) };
    let input = generate(&mut g);
    if let Err(msg) = property(&input) {
        panic!(
            "property '{name}' failed at {case_label} (case seed {case_seed:#018x})\n\
             input: {input:?}\n\
             cause: {msg}\n\
             replay: YY_TESTKIT_REPLAY={case_seed:#x} cargo test {name}"
        );
    }
}

/// Check `property` against `cfg.cases` inputs drawn from `generate`.
///
/// Panics (with the failing case seed and input) on the first failure.
/// When `YY_TESTKIT_REPLAY` is set, runs exactly that one case instead.
pub fn check_with<T: std::fmt::Debug>(
    cfg: Config,
    name: &str,
    mut generate: impl FnMut(&mut Gen) -> T,
    mut property: impl FnMut(&T) -> Result<(), String>,
) {
    if let Some(seed) = replay_seed() {
        run_case(name, seed, "replay", &mut generate, &mut property);
        return;
    }
    let cases = effective_cases(&cfg);
    for i in 0..cases {
        let case_seed = derive_seed(cfg.master_seed, fnv1a(name), i as u64);
        run_case(name, case_seed, &format!("case {i}/{cases}"), &mut generate, &mut property);
    }
}

/// [`check_with`] under the default [`Config`].
pub fn check<T: std::fmt::Debug>(
    name: &str,
    generate: impl FnMut(&mut Gen) -> T,
    property: impl FnMut(&T) -> Result<(), String>,
) {
    check_with(Config::default(), name, generate, property);
}

/// Assert inside a property closure; evaluates to `return Err(...)` on
/// failure so the harness can attach the case seed and input.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property closure.
#[macro_export]
macro_rules! tk_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Absolute-tolerance closeness assertion inside a property closure.
#[macro_export]
macro_rules! tk_assert_close {
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol): (f64, f64, f64) = ($a, $b, $tol);
        if !((a - b).abs() <= tol) {
            return Err(format!(
                "assertion failed: |{} - {}| <= {tol:e}\n  left: {a}\n right: {b}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_the_full_budget() {
        let count = std::cell::Cell::new(0u32);
        check_with(
            Config::with_cases(17),
            "budget_is_respected",
            |g| g.range_f64(0.0, 1.0),
            |&x| {
                count.set(count.get() + 1);
                tk_assert!((0.0..=1.0).contains(&x));
                Ok(())
            },
        );
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn failing_property_reports_seed_and_input() {
        let result = std::panic::catch_unwind(|| {
            check_with(
                Config::with_cases(8),
                "always_fails",
                |g| g.below(1000),
                |_| Err("forced".to_string()),
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().expect("panic carries a String");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case seed 0x"), "{msg}");
        assert!(msg.contains("YY_TESTKIT_REPLAY="), "{msg}");
        assert!(msg.contains("forced"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic_per_name_and_index() {
        let mut first: Vec<u64> = Vec::new();
        check_with(Config::with_cases(10), "stream_stability", |g| g.below(u64::MAX), |&x| {
            first.push(x);
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        check_with(Config::with_cases(10), "stream_stability", |g| g.below(u64::MAX), |&x| {
            second.push(x);
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
        // Distinct cases see distinct inputs.
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len());
    }

    #[test]
    fn different_property_names_get_different_streams() {
        let mut a: Vec<u64> = Vec::new();
        check_with(Config::with_cases(4), "name_a", |g| g.below(u64::MAX), |&x| {
            a.push(x);
            Ok(())
        });
        let mut b: Vec<u64> = Vec::new();
        check_with(Config::with_cases(4), "name_b", |g| g.below(u64::MAX), |&x| {
            b.push(x);
            Ok(())
        });
        assert_ne!(a, b);
    }

    #[test]
    fn vec_generators_respect_bounds() {
        check("vec_bounds", |g| g.vec_f64(-2.0, 3.0, 1, 9), |v| {
            tk_assert!((1..=9).contains(&v.len()), "len {}", v.len());
            tk_assert!(v.iter().all(|&x| (-2.0..=3.0).contains(&x)));
            Ok(())
        });
    }
}
