//! The global overset communication schedule for decomposed runs.
//!
//! In the parallel solver each rank owns one tile of one panel. Overset
//! boundary columns (the frame) of a rank's *padded* region must be filled
//! with values interpolated from the partner panel; the rank owning the
//! donor cell computes the interpolation (it holds the 2×2 donor stencil
//! in its owned+halo data) and sends the finished radial columns — the
//! `MPI_SEND`/`MPI_IRECV` traffic "under `gRunner%world%communicator`" of
//! the paper.
//!
//! The schedule is built *identically on every rank* from the partition
//! spec alone (no negotiation traffic): both sides iterate the same loops
//! in the same order, so send and receive buffers line up positionally.

use crate::interp::OversetColumn;
use crate::partition::Decomp2D;
use crate::patch::{Panel, PatchGrid};
use std::collections::BTreeMap;

/// One interpolation job on the donor side, in donor-tile-local indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DonorJob {
    /// Donor cell lower corner, local signed colatitude index.
    pub dj: isize,
    /// Donor cell lower corner, local signed longitude index.
    pub dk: isize,
    /// Bilinear weights (see [`crate::interp::OversetColumn::w`]).
    pub w: [f64; 4],
    /// Donor→target tangent rotation.
    pub rot: [[f64; 2]; 2],
}

/// One frame column to fill on the target side, in target-tile-local
/// signed indices (may address ghost columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetSlot {
    /// Local signed colatitude index of the frame column to fill.
    pub tj: isize,
    /// Local signed longitude index.
    pub tk: isize,
}

/// Everything this rank must interpolate and send to one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct OversetSendSet {
    /// Destination world rank.
    pub to_world: usize,
    /// Interpolation jobs, in wire order.
    pub jobs: Vec<DonorJob>,
}

/// Everything this rank will receive from one peer, and where it lands.
#[derive(Debug, Clone, PartialEq)]
pub struct OversetRecvSet {
    /// Source world rank.
    pub from_world: usize,
    /// Where each received column lands, in wire order.
    pub slots: Vec<TargetSlot>,
}

/// This rank's complete overset exchange schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OversetExchange {
    /// Sorted by destination world rank.
    pub sends: Vec<OversetSendSet>,
    /// Sorted by source world rank.
    pub recvs: Vec<OversetRecvSet>,
}

impl OversetExchange {
    /// Total columns this rank donates.
    pub fn donated_columns(&self) -> usize {
        self.sends.iter().map(|s| s.jobs.len()).sum()
    }

    /// Total columns this rank receives.
    pub fn received_columns(&self) -> usize {
        self.recvs.iter().map(|r| r.slots.len()).sum()
    }
}

/// World rank of `(panel, panel_rank)` given `tiles` ranks per panel:
/// Yin ranks first, then Yang — the layout produced by splitting the world
/// communicator with color = panel index and key = world rank.
#[inline]
pub fn world_rank(panel: Panel, panel_rank: usize, tiles: usize) -> usize {
    panel.index() * tiles + panel_rank
}

/// Inverse of [`world_rank`].
#[inline]
pub fn panel_of_world(world: usize, tiles: usize) -> (Panel, usize) {
    (Panel::from_index(world / tiles), world % tiles)
}

/// Build the complete schedule: element `w` is world rank `w`'s exchange.
///
/// `columns` is the global overset table from
/// [`crate::interp::build_overset_columns`]; `decomp` the (identical)
/// per-panel decomposition.
pub fn build_schedule(
    grid: &PatchGrid,
    decomp: &Decomp2D,
    columns: &[OversetColumn],
) -> Vec<OversetExchange> {
    let tiles = decomp.tiles();
    let halo = grid.spec().halo;
    let nworld = 2 * tiles;
    // (donor_world, target_world) → job / slot lists, in deterministic
    // iteration order.
    let mut send_map: BTreeMap<(usize, usize), Vec<DonorJob>> = BTreeMap::new();
    let mut recv_map: BTreeMap<(usize, usize), Vec<TargetSlot>> = BTreeMap::new();

    for target_panel in [Panel::Yin, Panel::Yang] {
        let donor_panel = target_panel.other();
        for rt in 0..tiles {
            let tile_t = decomp.tile(rt);
            let wt = world_rank(target_panel, rt, tiles);
            for col in columns {
                if !tile_t.contains_padded(col.tgt_j as isize, col.tgt_k as isize, halo) {
                    continue;
                }
                let rd = decomp.owner(col.don_j, col.don_k);
                let wd = world_rank(donor_panel, rd, tiles);
                let tile_d = decomp.tile(rd);
                let (dj, dk) = tile_d.to_local(col.don_j, col.don_k);
                let (tj, tk) = tile_t.to_local(col.tgt_j, col.tgt_k);
                send_map
                    .entry((wd, wt))
                    .or_default()
                    .push(DonorJob { dj, dk, w: col.w, rot: col.rot });
                recv_map.entry((wd, wt)).or_default().push(TargetSlot { tj, tk });
            }
        }
    }

    let mut schedule: Vec<OversetExchange> = (0..nworld).map(|_| OversetExchange::default()).collect();
    for ((wd, wt), jobs) in send_map {
        schedule[wd].sends.push(OversetSendSet { to_world: wt, jobs });
    }
    for ((wd, wt), slots) in recv_map {
        schedule[wt].recvs.push(OversetRecvSet { from_world: wd, slots });
    }
    // BTreeMap iteration gives (wd, wt) lexicographic order: sends end up
    // sorted by destination; recvs need an explicit sort by source.
    for ex in &mut schedule {
        ex.recvs.sort_by_key(|r| r.from_world);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::build_overset_columns;
    use crate::patch::PatchSpec;

    fn setup(pth: usize, pph: usize) -> (PatchGrid, Decomp2D, Vec<OversetColumn>) {
        let g = PatchGrid::new(PatchSpec::equal_spacing(4, 17, 0.35, 1.0));
        let d = Decomp2D::new(pth, pph, &g);
        let cols = build_overset_columns(&g).unwrap();
        (g, d, cols)
    }

    #[test]
    fn world_rank_layout_round_trips() {
        assert_eq!(world_rank(Panel::Yin, 3, 8), 3);
        assert_eq!(world_rank(Panel::Yang, 3, 8), 11);
        assert_eq!(panel_of_world(3, 8), (Panel::Yin, 3));
        assert_eq!(panel_of_world(11, 8), (Panel::Yang, 3));
    }

    #[test]
    fn sends_and_recvs_pair_up() {
        let (g, d, cols) = setup(2, 3);
        let schedule = build_schedule(&g, &d, &cols);
        assert_eq!(schedule.len(), 12);
        for (w, ex) in schedule.iter().enumerate() {
            for s in &ex.sends {
                // The destination must list a matching receive of the same
                // length from us.
                let peer = &schedule[s.to_world];
                let r = peer
                    .recvs
                    .iter()
                    .find(|r| r.from_world == w)
                    .unwrap_or_else(|| panic!("rank {} missing recv from {w}", s.to_world));
                assert_eq!(r.slots.len(), s.jobs.len());
            }
            for r in &ex.recvs {
                let peer = &schedule[r.from_world];
                assert!(peer.sends.iter().any(|s| s.to_world == w));
            }
        }
    }

    #[test]
    fn cross_panel_only() {
        let (g, d, cols) = setup(2, 2);
        let tiles = d.tiles();
        let schedule = build_schedule(&g, &d, &cols);
        for (w, ex) in schedule.iter().enumerate() {
            let (my_panel, _) = panel_of_world(w, tiles);
            for s in &ex.sends {
                let (peer_panel, _) = panel_of_world(s.to_world, tiles);
                assert_ne!(my_panel, peer_panel, "overset traffic must cross panels");
            }
        }
    }

    #[test]
    fn every_padded_frame_column_is_covered_once_per_rank() {
        let (g, d, cols) = setup(2, 3);
        let halo = g.spec().halo;
        let tiles = d.tiles();
        let schedule = build_schedule(&g, &d, &cols);
        for rt in 0..tiles {
            let tile = d.tile(rt);
            // Count frame columns in the padded region.
            let mut expected = 0;
            for col in &cols {
                if tile.contains_padded(col.tgt_j as isize, col.tgt_k as isize, halo) {
                    expected += 1;
                }
            }
            for panel in [Panel::Yin, Panel::Yang] {
                let w = world_rank(panel, rt, tiles);
                let got = schedule[w].received_columns();
                assert_eq!(got, expected, "rank {w} frame column count");
                // No duplicate target slots from different donors.
                let mut seen = std::collections::HashSet::new();
                for r in &schedule[w].recvs {
                    for slot in &r.slots {
                        assert!(seen.insert((slot.tj, slot.tk)), "slot filled twice");
                    }
                }
            }
        }
    }

    #[test]
    fn donor_stencils_fit_in_owner_padded_region() {
        let (g, d, cols) = setup(3, 4);
        let halo = g.spec().halo as isize;
        let tiles = d.tiles();
        let schedule = build_schedule(&g, &d, &cols);
        for (w, ex) in schedule.iter().enumerate() {
            let (_, pr) = panel_of_world(w, tiles);
            let tile = d.tile(pr);
            for s in &ex.sends {
                for j in &s.jobs {
                    // Lower corner is owned...
                    assert!(j.dj >= 0 && (j.dj as usize) < tile.nth);
                    assert!(j.dk >= 0 && (j.dk as usize) < tile.nph);
                    // ...and the +1 nodes are within the halo.
                    assert!(j.dj + 1 < tile.nth as isize + halo);
                    assert!(j.dk + 1 < tile.nph as isize + halo);
                }
            }
        }
    }

    #[test]
    fn single_tile_schedule_matches_serial_structure() {
        let (g, d, cols) = setup(1, 1);
        let schedule = build_schedule(&g, &d, &cols);
        assert_eq!(schedule.len(), 2);
        // One send set each (to the partner), one recv set each.
        for ex in &schedule {
            assert_eq!(ex.sends.len(), 1);
            assert_eq!(ex.recvs.len(), 1);
            assert_eq!(ex.donated_columns(), cols.len());
            assert_eq!(ex.received_columns(), cols.len());
        }
    }

    #[test]
    fn yin_yang_symmetry_of_schedule() {
        // By the complementary symmetry, Yang rank q's schedule mirrors
        // Yin rank q's with panels swapped.
        let (g, d, cols) = setup(2, 2);
        let tiles = d.tiles();
        let schedule = build_schedule(&g, &d, &cols);
        for q in 0..tiles {
            let yin = &schedule[world_rank(Panel::Yin, q, tiles)];
            let yang = &schedule[world_rank(Panel::Yang, q, tiles)];
            assert_eq!(yin.sends.len(), yang.sends.len());
            for (a, b) in yin.sends.iter().zip(&yang.sends) {
                let (pa, ra) = panel_of_world(a.to_world, tiles);
                let (pb, rb) = panel_of_world(b.to_world, tiles);
                assert_eq!(pa, Panel::Yang);
                assert_eq!(pb, Panel::Yin);
                assert_eq!(ra, rb);
                assert_eq!(a.jobs, b.jobs);
            }
        }
    }
}
