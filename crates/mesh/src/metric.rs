//! Precomputed spherical metric factors for one tile.
//!
//! The finite-difference kernels repeatedly need `r`, `1/r`, `sin θ`,
//! `1/sin θ`, `cot θ` and the grid spacings. Because a component patch
//! keeps θ within ≈ [π/4, 3π/4], `sin θ` is bounded below by ≈ 0.7 — the
//! grid never approaches its own coordinate poles, which is the whole
//! point of the Yin-Yang construction.
//!
//! θ/φ arrays cover the tile's *padded* index range (owned + halo ghosts),
//! because centered derivatives of metric-weighted quantities (e.g.
//! `∂θ(sin θ vθ)`) evaluate the metric at neighbour nodes.

use crate::partition::Tile;
use crate::patch::PatchGrid;

/// Metric factors of a tile (or a whole panel when the tile covers it).
#[derive(Debug, Clone)]
pub struct Metric {
    halo: usize,
    /// Radial node positions, `nr` long.
    pub r: Vec<f64>,
    /// `1 / r`.
    pub inv_r: Vec<f64>,
    /// `r²` — the conservative radial-flux weight. Precomputed here so the
    /// RHS hot loop never allocates or recomputes it per call.
    pub r2: Vec<f64>,
    // Padded θ-indexed arrays (length nth + 2 halo).
    theta: Vec<f64>,
    sin_t: Vec<f64>,
    cos_t: Vec<f64>,
    inv_sin_t: Vec<f64>,
    cot_t: Vec<f64>,
    // Padded φ-indexed array.
    phi: Vec<f64>,
    /// Radial spacing.
    pub dr: f64,
    /// Colatitude spacing.
    pub dth: f64,
    /// Longitude spacing.
    pub dph: f64,
}

impl Metric {
    /// Build the metric for `tile` of `grid`.
    pub fn new(grid: &PatchGrid, tile: &Tile) -> Self {
        let m = Self::from_grids(grid.r(), grid.theta(), grid.phi(), tile, grid.spec().halo);
        // A Yin-Yang component patch never approaches its own coordinate
        // poles — assert the defining property.
        for (idx, &s) in m.sin_t.iter().enumerate() {
            assert!(
                s > 1e-6,
                "sin θ vanished at padded index {idx}: patch reaches its coordinate pole"
            );
        }
        m
    }

    /// Build a metric from raw 1-D grids. Unlike [`Metric::new`] this does
    /// not require `sin θ > 0` on the padded range: a full-sphere
    /// latitude–longitude grid (the baseline the paper converts *from*)
    /// analytically continues across the poles, where ghost rows carry
    /// `sin(−θ) = −sin θ`. Exact zeros (a node exactly on a pole) are
    /// still rejected — pole-free staggering is the caller's job.
    pub fn from_grids(
        r_grid: &geomath::Grid1D,
        theta_grid: &geomath::Grid1D,
        phi_grid: &geomath::Grid1D,
        tile: &Tile,
        halo: usize,
    ) -> Self {
        let h = halo as isize;
        let r: Vec<f64> = r_grid.coords().collect();
        let inv_r = r.iter().map(|&x| 1.0 / x).collect();
        let r2 = r.iter().map(|&x| x * x).collect();
        let mut theta = Vec::with_capacity(tile.nth + 2 * halo);
        for j in -h..(tile.nth as isize + h) {
            theta.push(theta_grid.coord_signed(tile.j0 as isize + j));
        }
        let sin_t: Vec<f64> = theta.iter().map(|&t| t.sin()).collect();
        let cos_t: Vec<f64> = theta.iter().map(|&t| t.cos()).collect();
        for (idx, &s) in sin_t.iter().enumerate() {
            assert!(s.abs() > 1e-12, "grid node {idx} sits exactly on a coordinate pole");
        }
        let inv_sin_t = sin_t.iter().map(|&s| 1.0 / s).collect();
        let cot_t = sin_t.iter().zip(&cos_t).map(|(&s, &c)| c / s).collect();
        let mut phi = Vec::with_capacity(tile.nph + 2 * halo);
        for k in -h..(tile.nph as isize + h) {
            phi.push(phi_grid.coord_signed(tile.k0 as isize + k));
        }
        Metric {
            halo,
            r,
            inv_r,
            r2,
            theta,
            sin_t,
            cos_t,
            inv_sin_t,
            cot_t,
            phi,
            dr: r_grid.spacing(),
            dth: theta_grid.spacing(),
            dph: phi_grid.spacing(),
        }
    }

    /// Metric for a whole panel as a single tile (serial runs).
    pub fn full(grid: &PatchGrid) -> Self {
        let (_, nth, nph) = grid.dims();
        let tile = Tile { rank: 0, cth: 0, cph: 0, j0: 0, nth, k0: 0, nph };
        Metric::new(grid, &tile)
    }

    #[inline]
    fn jdx(&self, j: isize) -> usize {
        (j + self.halo as isize) as usize
    }

    /// Colatitude of local signed index `j`.
    #[inline]
    pub fn theta(&self, j: isize) -> f64 {
        self.theta[self.jdx(j)]
    }

    /// `sin θ_j`.
    #[inline]
    pub fn sin_t(&self, j: isize) -> f64 {
        self.sin_t[self.jdx(j)]
    }

    /// `cos θ_j`.
    #[inline]
    pub fn cos_t(&self, j: isize) -> f64 {
        self.cos_t[self.jdx(j)]
    }

    /// `1 / sin θ_j`.
    #[inline]
    pub fn inv_sin_t(&self, j: isize) -> f64 {
        self.inv_sin_t[self.jdx(j)]
    }

    /// `cot θ_j`.
    #[inline]
    pub fn cot_t(&self, j: isize) -> f64 {
        self.cot_t[self.jdx(j)]
    }

    /// Longitude of local signed index `k`.
    #[inline]
    pub fn phi(&self, k: isize) -> f64 {
        self.phi[(k + self.halo as isize) as usize]
    }

    /// Smallest physical grid spacing on this tile:
    /// `min(Δr, rᵢ Δθ, rᵢ sin θ_min Δφ)` — the CFL length scale.
    pub fn min_spacing(&self) -> f64 {
        let r_min = self.r[0].min(*self.r.last().expect("nonempty radial grid"));
        let sin_min = self.sin_t.iter().cloned().fold(f64::INFINITY, f64::min);
        self.dr.min(r_min * self.dth).min(r_min * sin_min * self.dph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Decomp2D;
    use crate::patch::PatchSpec;
    use geomath::approx_eq;

    fn grid() -> PatchGrid {
        PatchGrid::new(PatchSpec::equal_spacing(8, 17, 0.35, 1.0))
    }

    #[test]
    fn full_metric_matches_grids() {
        let g = grid();
        let m = Metric::full(&g);
        assert_eq!(m.r.len(), 8);
        assert_eq!(m.r2.len(), 8);
        for (a, b) in m.r.iter().zip(&m.r2) {
            assert_eq!(a * a, *b, "r2 must be the bit-exact square of r");
        }
        assert!(approx_eq(m.r[0], 0.35, 1e-15));
        assert!(approx_eq(*m.r.last().unwrap(), 1.0, 1e-15));
        assert!(approx_eq(m.theta(0), g.theta().coord(0), 1e-15));
        assert!(approx_eq(m.phi(0), g.phi().coord(0), 1e-15));
        assert!(approx_eq(m.dr, g.r().spacing(), 1e-15));
    }

    #[test]
    fn trig_identities_hold() {
        let g = grid();
        let m = Metric::full(&g);
        let (_, nth, _) = g.dims();
        for j in -1..(nth as isize + 1) {
            let s = m.sin_t(j);
            let c = m.cos_t(j);
            assert!(approx_eq(s * s + c * c, 1.0, 1e-14));
            assert!(approx_eq(m.inv_sin_t(j) * s, 1.0, 1e-14));
            assert!(approx_eq(m.cot_t(j) * s, c, 1e-14));
        }
    }

    #[test]
    fn sin_theta_is_bounded_away_from_zero() {
        // The defining property of the component patch: no pole problems.
        let g = grid();
        let m = Metric::full(&g);
        let (_, nth, _) = g.dims();
        // With ext = 2 on a 17-node nominal span the padded θ range reaches
        // ≈ 28°, where sin θ ≈ 0.47 — still nowhere near the pole.
        for j in -1..(nth as isize + 1) {
            assert!(m.sin_t(j) > 0.4, "sin θ too small at {j}: {}", m.sin_t(j));
        }
    }

    #[test]
    fn tile_metric_matches_global_slice() {
        let g = grid();
        let d = Decomp2D::new(2, 3, &g);
        let t = d.tile(4);
        let full = Metric::full(&g);
        let m = Metric::new(&g, &t);
        for j in -1..(t.nth as isize + 1) {
            assert!(approx_eq(m.theta(j), full.theta(t.j0 as isize + j), 1e-14));
            assert!(approx_eq(m.sin_t(j), full.sin_t(t.j0 as isize + j), 1e-14));
        }
        for k in -1..(t.nph as isize + 1) {
            assert!(approx_eq(m.phi(k), full.phi(t.k0 as isize + k), 1e-14));
        }
    }

    #[test]
    fn min_spacing_is_positive_and_no_larger_than_dr() {
        let g = grid();
        let m = Metric::full(&g);
        assert!(m.min_spacing() > 0.0);
        assert!(m.min_spacing() <= m.dr);
    }
}
