//! Sphere coverage and overlap analysis (the Fig. 1 discussion).
//!
//! The basic Yin-Yang grid covers the sphere with two identical
//! rectangles-in-Mercator whose union is the whole sphere and whose
//! intersection — even in the infinitesimal-mesh limit — is a fixed
//! ≈ 6 % of the sphere (the paper: "the overlapping area has still
//! non-zero ratio of about 6 % of the whole spherical surface").
//!
//! Analytically, the nominal patch covers `3√2/8 ≈ 53.03 %` of the
//! sphere, so two patches overlap in `2 · 3√2/8 − 1 = 3√2/4 − 1 ≈
//! 6.066 %` *provided they cover everything* — which the Monte-Carlo
//! check below verifies directly.

use crate::patch::PatchGrid;
use geomath::rng::DetRng;
use geomath::{yang_from_yin_point, SphericalPoint, Vec3};

/// Exact area fraction of one nominal component patch.
pub fn nominal_patch_area_fraction() -> f64 {
    // ∫ sin θ dθ over [π/4, 3π/4] = √2 ; Δφ = 3π/2 ; sphere = 4π.
    3.0 * std::f64::consts::SQRT_2 / 8.0
}

/// Exact overlap fraction of the two nominal patches assuming full
/// coverage.
pub fn nominal_overlap_fraction() -> f64 {
    2.0 * nominal_patch_area_fraction() - 1.0
}

/// Result of a Monte-Carlo coverage scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Total sampled directions.
    pub samples: usize,
    /// Directions covered by at least one nominal patch.
    pub covered: usize,
    /// Directions covered by both patches.
    pub overlapped: usize,
}

impl CoverageReport {
    /// Fraction of directions covered by at least one patch.
    pub fn coverage_fraction(&self) -> f64 {
        self.covered as f64 / self.samples as f64
    }

    /// Fraction of directions covered by both patches.
    pub fn overlap_fraction(&self) -> f64 {
        self.overlapped as f64 / self.samples as f64
    }
}

/// Sample `n` uniformly distributed directions and classify them against
/// the *nominal* Yin/Yang spans.
pub fn scan_nominal_coverage(n: usize, seed: u64) -> CoverageReport {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut covered = 0;
    let mut overlapped = 0;
    for _ in 0..n {
        let p = random_direction(&mut rng);
        let in_yin = PatchGrid::in_nominal_span(p.theta, p.phi);
        let q = yang_from_yin_point(p);
        let in_yang = PatchGrid::in_nominal_span(q.theta, q.phi);
        if in_yin || in_yang {
            covered += 1;
        }
        if in_yin && in_yang {
            overlapped += 1;
        }
    }
    CoverageReport { samples: n, covered, overlapped }
}

/// Monte-Carlo check that the *discrete* pair covers the sphere: every
/// direction must fall inside the owned span of at least one panel with
/// enough margin that its bilinear donor cell exists.
pub fn scan_discrete_coverage(grid: &PatchGrid, n: usize, seed: u64) -> CoverageReport {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut covered = 0;
    let mut overlapped = 0;
    for _ in 0..n {
        let p = random_direction(&mut rng);
        let q = yang_from_yin_point(p);
        let in_yin = grid.theta().contains(p.theta, 0.0) && grid.phi().contains(p.phi, 0.0);
        let in_yang = grid.theta().contains(q.theta, 0.0) && grid.phi().contains(q.phi, 0.0);
        if in_yin || in_yang {
            covered += 1;
        }
        if in_yin && in_yang {
            overlapped += 1;
        }
    }
    CoverageReport { samples: n, covered, overlapped }
}

/// Distance (in angular units) from direction `(θ, φ)` to the edge of a
/// panel's owned span; 0 outside the span.
fn edge_distance(grid: &PatchGrid, theta: f64, phi: f64) -> f64 {
    let d = (theta - grid.theta().min())
        .min(grid.theta().max() - theta)
        .min(phi - grid.phi().min())
        .min(grid.phi().max() - phi);
    d.max(0.0)
}

/// Per-column deduplication weights for two-panel surface/volume
/// integrals: a smooth partition of unity
/// `w = d_self / (d_self + d_partner)` where `d_p` is the direction's
/// distance to panel p's owned edge (0 outside). Outside the overlap the
/// weight is 1; inside it the two panels' weights sum to exactly 1 and
/// vary smoothly, so the weighted trapezoid sums over both panels
/// integrate the sphere at O(Δ²) — the precise fix for the
/// double-counted overlap that
/// `yy_mhd::energy::overlap_normalization` only corrects on average.
/// (A binary ½/1 mask would leave an O(Δ) bias at the overlap border;
/// smooth blending is the standard overset remedy.)
///
/// By the Yin↔Yang symmetry one table serves both panels.
/// Returned row-major: `weights[j * nph + k]`.
pub fn dedup_column_weights(grid: &PatchGrid) -> Vec<f64> {
    let (_, nth, nph) = grid.dims();
    let mut w = Vec::with_capacity(nth * nph);
    for j in 0..nth {
        for k in 0..nph {
            let theta = grid.theta().coord(j);
            let phi = grid.phi().coord(k);
            let d_self = edge_distance(grid, theta, phi);
            let q = yang_from_yin_point(SphericalPoint::new(1.0, theta, phi));
            let d_partner = edge_distance(grid, q.theta, q.phi);
            let denom = d_self + d_partner;
            w.push(if denom > 0.0 { d_self / denom } else { 0.5 });
        }
    }
    w
}

/// A uniformly distributed random direction on the unit sphere.
fn random_direction(rng: &mut DetRng) -> SphericalPoint {
    // Uniform in cos θ and φ.
    let z: f64 = rng.range_f64(-1.0, 1.0);
    let phi: f64 = rng.range_f64(-std::f64::consts::PI, std::f64::consts::PI);
    let s = (1.0 - z * z).max(0.0).sqrt();
    SphericalPoint::from_cartesian(Vec3::new(s * phi.cos(), s * phi.sin(), z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::PatchSpec;
    use geomath::approx_eq;

    #[test]
    fn analytic_fractions_match_the_paper() {
        assert!(approx_eq(nominal_patch_area_fraction(), 0.53033, 1e-4));
        // "about 6 %"
        assert!(approx_eq(nominal_overlap_fraction(), 0.06066, 1e-4));
    }

    #[test]
    fn nominal_pair_covers_the_sphere() {
        let rep = scan_nominal_coverage(200_000, 42);
        assert_eq!(
            rep.covered, rep.samples,
            "{} of {} directions uncovered",
            rep.samples - rep.covered,
            rep.samples
        );
        // Monte-Carlo overlap should agree with the analytic 6.066 %.
        assert!(
            (rep.overlap_fraction() - nominal_overlap_fraction()).abs() < 3e-3,
            "overlap fraction {}",
            rep.overlap_fraction()
        );
    }

    #[test]
    fn discrete_pair_with_extension_covers_with_margin() {
        let g = PatchGrid::new(PatchSpec::equal_spacing(4, 17, 0.35, 1.0));
        let rep = scan_discrete_coverage(&g, 100_000, 7);
        assert_eq!(rep.covered, rep.samples);
        // The extended patches overlap more than the nominal 6 %.
        assert!(rep.overlap_fraction() > nominal_overlap_fraction());
    }

    /// Analytic area fraction of an *extended* patch, from its grid spans.
    fn extended_patch_fraction(g: &PatchGrid) -> f64 {
        let phi_span = g.phi().max() - g.phi().min();
        let cap = g.theta().min().cos() - g.theta().max().cos();
        phi_span * cap / (4.0 * std::f64::consts::PI)
    }

    #[test]
    fn overlap_shrinks_toward_nominal_with_resolution() {
        // Higher resolution → smaller extension cells → overlap closer to
        // the 6.066 % infinitesimal-mesh limit (the paper's point), and at
        // every resolution Monte-Carlo agrees with the analytic extended
        // overlap 2·frac − 1.
        let over = |nth: usize| {
            let g = PatchGrid::new(PatchSpec::equal_spacing(4, nth, 0.35, 1.0));
            let mc = scan_discrete_coverage(&g, 100_000, 11).overlap_fraction();
            let analytic = 2.0 * extended_patch_fraction(&g) - 1.0;
            assert!(
                (mc - analytic).abs() < 5e-3,
                "nth={nth}: MC overlap {mc} vs analytic {analytic}"
            );
            mc
        };
        let coarse = over(9);
        let fine = over(65);
        assert!(fine < coarse, "overlap should shrink: coarse {coarse}, fine {fine}");
        // At nth = 65 the extension still inflates overlap to ≈ 13 %, a
        // little more than twice the infinitesimal-mesh limit; at the
        // paper's 512-node resolution it is ≈ 7 %.
        assert!(fine < 0.15 && fine > nominal_overlap_fraction());
    }

    #[test]
    fn dedup_weights_integrate_to_the_sphere_area() {
        // Σ w · (trapezoid area weights) over BOTH panels ≈ 4π exactly
        // (not just on average): the weighted pair tiles the sphere.
        use geomath::quadrature::trapezoid_weights;
        let g = PatchGrid::new(PatchSpec::equal_spacing(4, 33, 0.35, 1.0));
        let (_, nth, nph) = g.dims();
        let w = dedup_column_weights(&g);
        let wt = trapezoid_weights(g.theta());
        let wp = trapezoid_weights(g.phi());
        let mut area = 0.0;
        for j in 0..nth {
            for k in 0..nph {
                area += w[j * nph + k] * wt[j] * g.theta().coord(j).sin() * wp[k];
            }
        }
        let total = 2.0 * area; // both (identical) panels
        let sphere = 4.0 * std::f64::consts::PI;
        assert!(
            (total / sphere - 1.0).abs() < 5e-3,
            "weighted two-panel area {total} vs 4π {sphere}"
        );
        // Without the weights the same sum over-counts by the overlap.
        let mut raw = 0.0;
        for j in 0..nth {
            for k in 0..nph {
                raw += wt[j] * g.theta().coord(j).sin() * wp[k];
            }
        }
        assert!(2.0 * raw / sphere > 1.1, "unweighted area must over-count");
    }

    #[test]
    fn random_directions_are_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(3);
        let n = 50_000;
        let mut north = 0;
        for _ in 0..n {
            if random_direction(&mut rng).theta < std::f64::consts::FRAC_PI_2 {
                north += 1;
            }
        }
        let frac = north as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "hemisphere fraction {frac}");
    }
}
