//! Overset interpolation between the Yin and Yang component grids.
//!
//! Following the general overset (Chimera) methodology the paper cites,
//! the boundary *frame* of each component grid (the outermost `halo`
//! node columns) is not advanced by finite differences; instead its values
//! are interpolated from the partner grid. Because the two grids are
//! identical and the Yin↔Yang map is an involution, **one** stencil table
//! serves both directions — the conciseness the paper attributes to the
//! grid's complementary symmetry.
//!
//! Interpolation is bilinear in (θ, φ) at fixed radius: the radial grids
//! of the two panels coincide and the map preserves radius, so one
//! horizontal stencil applies to an entire radial column at once — the
//! same radial-vectorization structure the Earth Simulator exploited.
//!
//! Vector quantities interpolate their spherical components in the donor
//! basis and then rotate into the target basis with the precomputed 2×2
//! tangent rotation (the radial component is invariant).

use crate::patch::PatchGrid;
use geomath::{SphericalPoint, YinYangMap};
use yy_field::Array3;

/// Floating-point operations per node of [`interp_scalar_column`]: the
/// 4-donor bilinear blend (4 multiplies + 3 adds). Exact — the counter
/// subsystem's overset accounting is built on these constants.
pub const INTERP_SCALAR_FLOPS_PER_NODE: u64 = 7;

/// Floating-point operations per node of [`interp_vector_column`]:
/// three scalar blends (3 × 7) plus the 2×2 tangent rotation of the
/// (θ, φ) components (4 multiplies + 2 adds).
pub const INTERP_VECTOR_FLOPS_PER_NODE: u64 = 3 * INTERP_SCALAR_FLOPS_PER_NODE + 6;

/// One interpolated boundary column: target `(j, k)` in the target panel,
/// bilinear donors in the partner panel (global owned indices), weights,
/// and the donor→target tangent rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OversetColumn {
    /// Target column's global colatitude index (in the target panel).
    pub tgt_j: usize,
    /// Target column's global longitude index.
    pub tgt_k: usize,
    /// Lower-corner donor node's colatitude index (partner panel).
    pub don_j: usize,
    /// Lower-corner donor node's longitude index.
    pub don_k: usize,
    /// Weights for donors `(j, k), (j+1, k), (j, k+1), (j+1, k+1)`.
    pub w: [f64; 4],
    /// Tangent rotation: `(vθ, vφ)_target = rot · (vθ, vφ)_donor`.
    pub rot: [[f64; 2]; 2],
}

/// Why overset stencil construction failed.
#[derive(Debug, Clone, PartialEq)]
pub enum OversetError {
    /// A target column's image fell outside the partner patch entirely.
    ImageOutsidePartner {
        /// Target column's global colatitude index.
        tgt_j: usize,
        /// Target column's global longitude index.
        tgt_k: usize,
        /// Image colatitude in partner coordinates.
        theta: f64,
        /// Image longitude in partner coordinates.
        phi: f64,
    },
    /// A donor node would itself be a frame (interpolated) node, so the
    /// interpolation would not be grounded in finite-difference data.
    /// The fix is a larger `ext` in the [`crate::PatchSpec`].
    DonorInFrame {
        /// Target column's global colatitude index.
        tgt_j: usize,
        /// Target column's global longitude index.
        tgt_k: usize,
        /// Offending donor colatitude index.
        don_j: usize,
        /// Offending donor longitude index.
        don_k: usize,
    },
}

impl std::fmt::Display for OversetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OversetError::ImageOutsidePartner { tgt_j, tgt_k, theta, phi } => write!(
                f,
                "overset target ({tgt_j},{tgt_k}) maps to (θ={theta:.4}, φ={phi:.4}) \
                 outside the partner patch — increase the patch extension"
            ),
            OversetError::DonorInFrame { tgt_j, tgt_k, don_j, don_k } => write!(
                f,
                "overset target ({tgt_j},{tgt_k}) has donor ({don_j},{don_k}) inside \
                 the partner's boundary frame — increase the patch extension"
            ),
        }
    }
}

impl std::error::Error for OversetError {}

/// Build the overset stencil table for a Yin-Yang pair built on `grid`.
///
/// The table maps frame columns of either panel to donors in the other;
/// by the Yin↔Yang symmetry it is valid for both directions.
pub fn build_overset_columns(grid: &PatchGrid) -> Result<Vec<OversetColumn>, OversetError> {
    let map = YinYangMap::new();
    let (_, nth, nph) = grid.dims();
    let frame = grid.frame();
    let mut out = Vec::new();
    for j in 0..nth {
        for k in 0..nph {
            if !grid.is_frame(j as isize, k as isize) {
                continue;
            }
            let p = SphericalPoint::new(1.0, grid.theta().coord(j), grid.phi().coord(k));
            let q = map.transform_point(p);
            let (Some((jd, fy)), Some((kd, fx))) =
                (grid.theta().locate(q.theta, 1e-9), grid.phi().locate(q.phi, 1e-9))
            else {
                return Err(OversetError::ImageOutsidePartner {
                    tgt_j: j,
                    tgt_k: k,
                    theta: q.theta,
                    phi: q.phi,
                });
            };
            // Donor cell nodes must be FD-interior in the partner.
            if jd < frame || jd + 1 >= nth - frame || kd < frame || kd + 1 >= nph - frame {
                return Err(OversetError::DonorInFrame {
                    tgt_j: j,
                    tgt_k: k,
                    don_j: jd,
                    don_k: kd,
                });
            }
            let w = [
                (1.0 - fy) * (1.0 - fx),
                fy * (1.0 - fx),
                (1.0 - fy) * fx,
                fy * fx,
            ];
            let rot = map.tangent_rotation(q.theta, q.phi);
            out.push(OversetColumn { tgt_j: j, tgt_k: k, don_j: jd, don_k: kd, w, rot });
        }
    }
    Ok(out)
}

/// Interpolate the donor's radial column for `col` into `out` (scalar
/// fields). `donor` must be the *partner* panel's full-panel array.
#[inline]
pub fn interp_scalar_column(col: &OversetColumn, donor: &Array3, out: &mut [f64]) {
    let (j, k) = (col.don_j as isize, col.don_k as isize);
    let r00 = donor.row(j, k);
    let r10 = donor.row(j + 1, k);
    let r01 = donor.row(j, k + 1);
    let r11 = donor.row(j + 1, k + 1);
    let [w00, w10, w01, w11] = col.w;
    for i in 0..out.len() {
        out[i] = w00 * r00[i] + w10 * r10[i] + w01 * r01[i] + w11 * r11[i];
    }
}

/// Apply one overset column to a scalar field pair (serial, full-panel
/// arrays): reads `donor`, writes the target frame column of `target`.
pub fn apply_scalar(col: &OversetColumn, donor: &Array3, target: &mut Array3) {
    interp_scalar_column(col, donor, target.row_mut(col.tgt_j as isize, col.tgt_k as isize));
}

/// Interpolate and rotate a vector field's radial columns for `col`.
///
/// Writes the target-basis components into `(out_r, out_t, out_p)`.
/// Allocation-free: the tangential components are interpolated into the
/// output rows in the donor basis and rotated in place (per-node locals,
/// so the arithmetic — and hence the result — is bit-identical to
/// rotating out of separate temporaries).
pub fn interp_vector_column(
    col: &OversetColumn,
    donor_r: &Array3,
    donor_t: &Array3,
    donor_p: &Array3,
    out_r: &mut [f64],
    out_t: &mut [f64],
    out_p: &mut [f64],
) {
    interp_scalar_column(col, donor_r, out_r);
    interp_scalar_column(col, donor_t, out_t);
    interp_scalar_column(col, donor_p, out_p);
    let m = col.rot;
    for i in 0..out_t.len() {
        let at = out_t[i];
        let ap = out_p[i];
        out_t[i] = m[0][0] * at + m[0][1] * ap;
        out_p[i] = m[1][0] * at + m[1][1] * ap;
    }
}

/// Apply one overset column to a vector field pair (serial, full-panel
/// arrays).
#[allow(clippy::too_many_arguments)]
pub fn apply_vector(
    col: &OversetColumn,
    donor_r: &Array3,
    donor_t: &Array3,
    donor_p: &Array3,
    target_r: &mut Array3,
    target_t: &mut Array3,
    target_p: &mut Array3,
) {
    let (tj, tk) = (col.tgt_j as isize, col.tgt_k as isize);
    interp_vector_column(
        col,
        donor_r,
        donor_t,
        donor_p,
        target_r.row_mut(tj, tk),
        target_t.row_mut(tj, tk),
        target_p.row_mut(tj, tk),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::PatchSpec;
    use geomath::spherical::SphericalBasis;
    use geomath::{approx_eq, Vec3};

    fn grid(nth: usize, ext: usize) -> PatchGrid {
        PatchGrid::new(PatchSpec::equal_spacing(6, nth, 0.35, 1.0).with_ext(ext))
    }

    #[test]
    fn build_succeeds_with_extension() {
        for ext in [1, 2, 3] {
            let g = grid(17, ext);
            let cols = build_overset_columns(&g).expect("ext >= 1 must be valid");
            let (_, nth, nph) = g.dims();
            // frame = 1: full perimeter of the owned index rectangle.
            assert_eq!(cols.len(), 2 * nph + 2 * (nth - 2));
        }
    }

    #[test]
    fn build_fails_without_extension() {
        let g = grid(17, 0);
        let err = build_overset_columns(&g).unwrap_err();
        match err {
            OversetError::DonorInFrame { .. } | OversetError::ImageOutsidePartner { .. } => {}
        }
    }

    #[test]
    fn weights_are_a_partition_of_unity() {
        let g = grid(17, 2);
        for col in build_overset_columns(&g).unwrap() {
            let s: f64 = col.w.iter().sum();
            assert!(approx_eq(s, 1.0, 1e-12));
            assert!(col.w.iter().all(|&w| (-1e-12..=1.0 + 1e-12).contains(&w)));
        }
    }

    #[test]
    fn donors_are_strictly_interior() {
        let g = grid(17, 2);
        let (_, nth, nph) = g.dims();
        let f = g.frame();
        for col in build_overset_columns(&g).unwrap() {
            assert!(col.don_j >= f && col.don_j + 1 < nth - f);
            assert!(col.don_k >= f && col.don_k + 1 < nph - f);
        }
    }

    /// Sample a smooth sphere function (a linear Cartesian form) on a
    /// panel in its own coordinates.
    fn sample_scalar(g: &PatchGrid, yang: bool) -> Array3 {
        let map = geomath::YinYangMap::new();
        Array3::from_fn(g.full_shape(), |i, j, k| {
            let r = g.r().coord(i);
            let p = SphericalPoint::new(
                r,
                g.theta().coord_signed(j),
                g.phi().coord_signed(k),
            );
            // For the Yang panel, express the point in Yin coordinates so
            // both panels sample the same physical field f = x + 2y + 3z.
            let pp = if yang { map.transform_point(p) } else { p };
            let c = pp.to_cartesian();
            c.x + 2.0 * c.y + 3.0 * c.z
        })
    }

    #[test]
    fn scalar_interpolation_converges_second_order() {
        let err_for = |nth: usize| {
            let g = grid(nth, 2);
            let cols = build_overset_columns(&g).unwrap();
            let yin = sample_scalar(&g, false); // target panel samples
            let yang = sample_scalar(&g, true); // donor panel samples
            let mut target = Array3::zeros(g.full_shape());
            let mut max_err: f64 = 0.0;
            for col in &cols {
                apply_scalar(col, &yang, &mut target);
                let exact = yin.row(col.tgt_j as isize, col.tgt_k as isize);
                let got = target.row(col.tgt_j as isize, col.tgt_k as isize);
                for (a, b) in got.iter().zip(exact) {
                    max_err = max_err.max((a - b).abs());
                }
            }
            max_err
        };
        let (e1, e2) = (err_for(13), err_for(25));
        // Spacing halves → error should drop ~4×.
        let rate = (e1 / e2).log2();
        assert!(rate > 1.7, "interpolation convergence rate {rate} (errors {e1:.2e}, {e2:.2e})");
    }

    /// Sample the spherical components of a constant Cartesian vector
    /// field on a panel (in that panel's own coordinate frame).
    fn sample_vector(g: &PatchGrid, yang: bool, v_yin_cart: Vec3) -> (Array3, Array3, Array3) {
        let shape = g.full_shape();
        let mut vr = Array3::zeros(shape);
        let mut vt = Array3::zeros(shape);
        let mut vp = Array3::zeros(shape);
        // In the Yang frame the same physical vector has Cartesian
        // components M v.
        let v_local = if yang {
            geomath::yinyang::yinyang_cartesian(v_yin_cart)
        } else {
            v_yin_cart
        };
        let (gth, gph) = (shape.gth as isize, shape.gph as isize);
        for k in -gph..(shape.nph as isize + gph) {
            for j in -gth..(shape.nth as isize + gth) {
                let basis =
                    SphericalBasis::at(g.theta().coord_signed(j), g.phi().coord_signed(k));
                let (a, b, c) = basis.from_cartesian(v_local);
                for i in 0..shape.nr {
                    vr.set(i, j, k, a);
                    vt.set(i, j, k, b);
                    vp.set(i, j, k, c);
                }
            }
        }
        (vr, vt, vp)
    }

    #[test]
    fn vector_interpolation_reconstructs_constant_field() {
        // A constant Cartesian field has smoothly varying spherical
        // components; after interpolation + rotation the target panel must
        // see the same physical field in its own basis. Bilinear error is
        // O(h²); we check convergence.
        let v = Vec3::new(0.3, -1.1, 0.7);
        let err_for = |nth: usize| {
            let g = grid(nth, 2);
            let cols = build_overset_columns(&g).unwrap();
            let (dr, dt, dp) = sample_vector(&g, true, v); // donor = Yang
            let (er, et, ep) = sample_vector(&g, false, v); // exact on Yin
            let shape = g.full_shape();
            let (mut tr, mut tt, mut tp) =
                (Array3::zeros(shape), Array3::zeros(shape), Array3::zeros(shape));
            let mut max_err: f64 = 0.0;
            for col in &cols {
                apply_vector(col, &dr, &dt, &dp, &mut tr, &mut tt, &mut tp);
                let (j, k) = (col.tgt_j as isize, col.tgt_k as isize);
                for (got, exact) in [(&tr, &er), (&tt, &et), (&tp, &ep)] {
                    for i in 0..shape.nr {
                        max_err = max_err.max((got.at(i, j, k) - exact.at(i, j, k)).abs());
                    }
                }
            }
            max_err
        };
        let (e1, e2) = (err_for(13), err_for(25));
        let rate = (e1 / e2).log2();
        assert!(
            rate > 1.7,
            "vector interpolation convergence rate {rate} (errors {e1:.2e}, {e2:.2e})"
        );
        assert!(e2 < 5e-3, "absolute error too large: {e2:.2e}");
    }

    #[test]
    fn radial_component_is_exact_for_radial_fields() {
        // A purely radial field v = f(r) r̂ has vθ = vφ = 0 in every basis
        // and vr independent of angle → interpolation is exact.
        let g = grid(17, 2);
        let cols = build_overset_columns(&g).unwrap();
        let shape = g.full_shape();
        let radial = Array3::from_fn(shape, |i, _, _| g.r().coord(i).powi(2));
        let zeros = Array3::zeros(shape);
        let (mut tr, mut tt, mut tp) =
            (Array3::zeros(shape), Array3::zeros(shape), Array3::zeros(shape));
        for col in &cols {
            apply_vector(col, &radial, &zeros, &zeros, &mut tr, &mut tt, &mut tp);
            let (j, k) = (col.tgt_j as isize, col.tgt_k as isize);
            for i in 0..shape.nr {
                assert!(approx_eq(tr.at(i, j, k), g.r().coord(i).powi(2), 1e-12));
                assert!(approx_eq(tt.at(i, j, k), 0.0, 1e-12));
                assert!(approx_eq(tp.at(i, j, k), 0.0, 1e-12));
            }
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = OversetError::DonorInFrame { tgt_j: 1, tgt_k: 2, don_j: 0, don_k: 5 };
        assert!(e.to_string().contains("increase the patch extension"));
    }
}
