//! The Yin-Yang overset spherical mesh.
//!
//! A Yin-Yang grid (Kageyama & Sato 2004; SC2004 paper §II) covers a
//! spherical shell with two *identical* component grids — "Yin" and
//! "Yang" — each a low-latitude portion of an ordinary latitude–longitude
//! grid: 90° in latitude (θ ∈ [π/4, 3π/4]) and 270° in longitude
//! (φ ∈ [−3π/4, 3π/4]), related by the involutive Cartesian map
//! `(xe, ye, ze) = (−xn, zn, yn)`.
//!
//! This crate owns the geometry:
//!
//! * [`patch::PatchGrid`] — one component grid (identical for Yin and
//!   Yang), with extension cells beyond the nominal span so that overset
//!   boundary nodes always land strictly inside the partner's interior;
//! * [`partition`] — the 2-D (θ, φ) block decomposition of a panel over
//!   ranks, the paper's intra-panel `MPI_CART_CREATE` layout;
//! * [`metric`] — precomputed spherical metric factors for a tile;
//! * [`interp`] — bilinear overset interpolation stencils with tangent
//!   rotation for vector components, plus donor validity checks;
//! * [`routing`] — the global send/receive schedule for overset data in a
//!   decomposed run (who interpolates what for whom);
//! * [`coverage`] — Monte-Carlo coverage/overlap analysis reproducing the
//!   "~6 % overlap" figure of the paper (Fig. 1 discussion).

pub mod coverage;
pub mod interp;
pub mod metric;
pub mod partition;
pub mod patch;
pub mod routing;

pub use coverage::dedup_column_weights;
pub use interp::{apply_scalar, apply_vector, build_overset_columns, OversetColumn};
pub use metric::Metric;
pub use partition::{block_range, owner_of, Decomp2D, Tile};
pub use patch::{Panel, PatchGrid, PatchSpec};
pub use routing::{OversetExchange, OversetRecvSet, OversetSendSet};
