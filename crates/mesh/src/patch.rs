//! One Yin-Yang component grid ("patch"), identical for Yin and Yang.
//!
//! The nominal patch spans θ ∈ [π/4, 3π/4] and φ ∈ [−3π/4, 3π/4]. The
//! grid extends `ext` extra cells beyond the nominal span on each
//! horizontal side: the mid-edge points of one nominal patch fall exactly
//! *on* the partner's nominal boundary (see the worked example in
//! `geomath::yinyang`), so without extension the bilinear donors of a
//! boundary node would themselves be boundary nodes. With `ext ≥ 1` every
//! boundary node of one patch lies strictly inside the partner's
//! finite-difference interior. The paper's 514 × 1538 node counts reflect
//! the same construction (512/1536 nominal intervals plus margin).

use geomath::Grid1D;
use std::f64::consts::PI;
use yy_field::Shape;

/// Which component grid a quantity lives on. The paper also calls Yin the
/// "n-grid" and Yang the "e-grid".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Panel {
    /// The "n-grid": the low-latitude band of the geographic coordinates.
    Yin,
    /// The "e-grid": the same band in the complementary coordinates.
    Yang,
}

impl Panel {
    /// The partner panel.
    #[inline]
    pub fn other(self) -> Panel {
        match self {
            Panel::Yin => Panel::Yang,
            Panel::Yang => Panel::Yin,
        }
    }

    /// Panel index: Yin = 0, Yang = 1 (the `MPI_COMM_SPLIT` color).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Panel::Yin => 0,
            Panel::Yang => 1,
        }
    }

    /// Inverse of [`Panel::index`].
    pub fn from_index(i: usize) -> Panel {
        match i {
            0 => Panel::Yin,
            1 => Panel::Yang,
            _ => panic!("panel index {i} out of range"),
        }
    }
}

/// Resolution and extent parameters of a Yin-Yang patch pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchSpec {
    /// Radial node count.
    pub nr: usize,
    /// Nodes across the *nominal* 90° colatitude span (θ = π/4 … 3π/4).
    pub nth_nominal: usize,
    /// Nodes across the *nominal* 270° longitude span.
    pub nph_nominal: usize,
    /// Inner shell radius (paper normalization: ro = 1).
    pub ri: f64,
    /// Outer shell radius.
    pub ro: f64,
    /// Extension cells beyond the nominal span per horizontal side.
    pub ext: usize,
    /// Ghost width for the finite-difference stencil (1 for the paper's
    /// second-order central differences).
    pub halo: usize,
}

impl PatchSpec {
    /// A spec with (approximately) equal angular spacing in θ and φ:
    /// `nph_nominal = 3 (nth_nominal − 1) + 1` since the φ span is three
    /// times the θ span.
    pub fn equal_spacing(nr: usize, nth_nominal: usize, ri: f64, ro: f64) -> Self {
        PatchSpec {
            nr,
            nth_nominal,
            nph_nominal: 3 * (nth_nominal - 1) + 1,
            ri,
            ro,
            ext: 2,
            halo: 1,
        }
    }

    /// Override the extension width.
    pub fn with_ext(mut self, ext: usize) -> Self {
        self.ext = ext;
        self
    }

    /// Override the halo width.
    pub fn with_halo(mut self, halo: usize) -> Self {
        self.halo = halo;
        self
    }
}

/// The discretized geometry of one component grid.
#[derive(Debug, Clone)]
pub struct PatchGrid {
    spec: PatchSpec,
    r: Grid1D,
    theta: Grid1D,
    phi: Grid1D,
}

impl PatchGrid {
    /// Build the patch for `spec`.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (too few nodes, bad radii) or if
    /// the extended span would reach the coordinate poles (θ ≤ 0), which
    /// would reintroduce exactly the singularity the Yin-Yang grid
    /// removes.
    pub fn new(spec: PatchSpec) -> Self {
        // Volume solvers want ≥ 4 radial nodes (wall + interior + wall);
        // surface problems (transport, shallow water) use thin 2-node
        // shells whose radial direction is inert.
        assert!(spec.nr >= 2, "need at least 2 radial nodes");
        assert!(spec.nth_nominal >= 4 && spec.nph_nominal >= 4, "patch too coarse");
        assert!(spec.ri > 0.0 && spec.ro > spec.ri, "bad shell radii");
        let dth = (PI / 2.0) / (spec.nth_nominal as f64 - 1.0);
        let dph = (3.0 * PI / 2.0) / (spec.nph_nominal as f64 - 1.0);
        let e = spec.ext as f64;
        let th_min = PI / 4.0 - e * dth;
        let th_max = 3.0 * PI / 4.0 + e * dth;
        // Keep a further halo's worth of margin from the poles: ghost
        // nodes of θ-edge tiles must also have sin θ bounded away from 0.
        let pole_margin = (spec.halo as f64 + 0.5) * dth;
        assert!(
            th_min - pole_margin > 0.0 && th_max + pole_margin < PI,
            "extension {} too large: extended span would reach the poles",
            spec.ext
        );
        let ph_min = -3.0 * PI / 4.0 - e * dph;
        let ph_max = 3.0 * PI / 4.0 + e * dph;
        PatchGrid {
            spec,
            r: Grid1D::new(spec.nr, spec.ri, spec.ro, 0),
            theta: Grid1D::new(spec.nth_nominal + 2 * spec.ext, th_min, th_max, spec.halo),
            phi: Grid1D::new(spec.nph_nominal + 2 * spec.ext, ph_min, ph_max, spec.halo),
        }
    }

    /// The spec this grid was built from.
    #[inline]
    pub fn spec(&self) -> PatchSpec {
        self.spec
    }

    /// Radial grid (no ghosts; physical boundaries at its ends).
    #[inline]
    pub fn r(&self) -> &Grid1D {
        &self.r
    }

    /// Colatitude grid (owned nodes include the extension; ghosts = halo).
    #[inline]
    pub fn theta(&self) -> &Grid1D {
        &self.theta
    }

    /// Longitude grid.
    #[inline]
    pub fn phi(&self) -> &Grid1D {
        &self.phi
    }

    /// Total owned node counts `(nr, nθ, nφ)` of the whole panel.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.spec.nr, self.theta.len(), self.phi.len())
    }

    /// Total grid points of the full Yin-Yang pair
    /// (`nr × nθ × nφ × 2`, the number the paper quotes).
    pub fn total_points(&self) -> usize {
        2 * self.spec.nr * self.theta.len() * self.phi.len()
    }

    /// Field shape for the *whole panel* held in one block (serial runs).
    pub fn full_shape(&self) -> Shape {
        Shape::new(self.spec.nr, self.theta.len(), self.phi.len(), self.spec.halo, self.spec.halo)
    }

    /// Width of the overset boundary frame in nodes (equal to the FD
    /// stencil radius = halo width): frame nodes are set by interpolation
    /// from the partner panel, interior nodes by finite differences.
    #[inline]
    pub fn frame(&self) -> usize {
        self.spec.halo
    }

    /// Is global column `(j, k)` (owned indices) part of the overset
    /// boundary frame?
    #[inline]
    pub fn is_frame(&self, j: isize, k: isize) -> bool {
        let f = self.frame() as isize;
        let nth = self.theta.len() as isize;
        let nph = self.phi.len() as isize;
        j < f || j >= nth - f || k < f || k >= nph - f
    }

    /// Is `(θ, φ)` within the *nominal* Yin patch span (used by the
    /// coverage analysis and for choosing which panel's "double solution"
    /// to keep when visualizing)?
    pub fn in_nominal_span(theta: f64, phi: f64) -> bool {
        (PI / 4.0..=3.0 * PI / 4.0).contains(&theta)
            && (-3.0 * PI / 4.0..=3.0 * PI / 4.0).contains(&phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomath::approx_eq;

    fn small() -> PatchGrid {
        PatchGrid::new(PatchSpec::equal_spacing(8, 17, 0.35, 1.0))
    }

    #[test]
    fn equal_spacing_matches_aspect() {
        let g = small();
        assert!(approx_eq(g.theta().spacing(), g.phi().spacing(), 1e-12));
        let (nr, nth, nph) = g.dims();
        assert_eq!(nr, 8);
        assert_eq!(nth, 17 + 4);
        assert_eq!(nph, 49 + 4);
    }

    #[test]
    fn nominal_span_sits_inside_extended_span() {
        let g = small();
        assert!(g.theta().min() < PI / 4.0);
        assert!(g.theta().max() > 3.0 * PI / 4.0);
        assert!(g.phi().min() < -3.0 * PI / 4.0);
        assert!(g.phi().max() > 3.0 * PI / 4.0);
        // Extension is exactly ext cells.
        assert!(approx_eq(PI / 4.0 - g.theta().min(), 2.0 * g.theta().spacing(), 1e-12));
    }

    #[test]
    fn extended_span_stays_clear_of_poles() {
        let g = small();
        let h = g.spec().halo as f64;
        assert!(g.theta().min() - h * g.theta().spacing() > 0.0);
        assert!(g.theta().max() + h * g.theta().spacing() < PI);
    }

    #[test]
    fn frame_classification() {
        let g = small();
        let (_, nth, nph) = g.dims();
        assert!(g.is_frame(0, 10));
        assert!(g.is_frame(nth as isize - 1, 10));
        assert!(g.is_frame(5, 0));
        assert!(g.is_frame(5, nph as isize - 1));
        assert!(!g.is_frame(1, 1));
        assert!(!g.is_frame(nth as isize - 2, nph as isize - 2));
    }

    #[test]
    fn total_points_counts_both_panels() {
        let g = small();
        let (nr, nth, nph) = g.dims();
        assert_eq!(g.total_points(), 2 * nr * nth * nph);
    }

    #[test]
    fn paper_scale_spec_matches_published_grid() {
        // The flagship run: 511 × 514 × 1538 × 2. With ext = 1 applied to
        // 512/1536 nominal node counts we land on the published numbers.
        let spec = PatchSpec {
            nr: 511,
            nth_nominal: 512,
            nph_nominal: 1536,
            ri: 0.35,
            ro: 1.0,
            ext: 1,
            halo: 1,
        };
        let g = PatchGrid::new(spec);
        let (nr, nth, nph) = g.dims();
        assert_eq!((nr, nth, nph), (511, 514, 1538));
        assert_eq!(g.total_points(), 807_923_704); // ≈ 8.1 × 10⁸, as in Table III
    }

    #[test]
    fn panel_enum_round_trips() {
        assert_eq!(Panel::Yin.other(), Panel::Yang);
        assert_eq!(Panel::Yang.other(), Panel::Yin);
        assert_eq!(Panel::from_index(Panel::Yin.index()), Panel::Yin);
        assert_eq!(Panel::from_index(Panel::Yang.index()), Panel::Yang);
    }

    #[test]
    #[should_panic(expected = "poles")]
    fn oversized_extension_panics() {
        PatchGrid::new(PatchSpec::equal_spacing(8, 9, 0.35, 1.0).with_ext(4));
    }

    #[test]
    fn nominal_span_predicate() {
        assert!(PatchGrid::in_nominal_span(PI / 2.0, 0.0));
        assert!(!PatchGrid::in_nominal_span(0.1, 0.0)); // near pole
        assert!(!PatchGrid::in_nominal_span(PI / 2.0, PI)); // far side
    }
}
