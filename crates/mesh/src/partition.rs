//! 2-D block decomposition of a panel over ranks.
//!
//! The paper decomposes each panel over a `Pθ × Pφ` Cartesian process
//! array (`MPI_CART_CREATE`); the radial dimension stays whole on every
//! rank (it is the vectorized dimension). Blocks are contiguous node
//! ranges whose sizes differ by at most one.

use crate::patch::PatchGrid;
use yy_field::Shape;

/// Contiguous block `idx` of `n` items split into `parts` blocks:
/// returns `(start, len)`. Earlier blocks get the extra items.
pub fn block_range(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts >= 1 && idx < parts, "block {idx} of {parts}");
    assert!(n >= parts, "cannot split {n} items into {parts} non-empty blocks");
    let base = n / parts;
    let extra = n % parts;
    if idx < extra {
        ((base + 1) * idx, base + 1)
    } else {
        (extra * (base + 1) + (idx - extra) * base, base)
    }
}

/// Which block owns item `g` under the [`block_range`] layout.
pub fn owner_of(n: usize, parts: usize, g: usize) -> usize {
    assert!(g < n);
    let base = n / parts;
    let extra = n % parts;
    let boundary = extra * (base + 1);
    if g < boundary {
        g / (base + 1)
    } else {
        extra + (g - boundary) / base
    }
}

/// Narrowest tile either axis may be cut to: one interior node per halo
/// side, matching the uniform constructor's historical assertion.
pub const MIN_TILE_WIDTH: usize = 2;

/// Cut points for a contiguous 1-D partition of `n` items into `parts`
/// blocks balancing the given per-item weights: returns `parts + 1`
/// boundaries with `starts[0] == 0` and `starts[parts] == n`, every
/// block at least `min_len` wide. Deterministic in the weights; a
/// non-positive total falls back to the uniform [`block_range`] layout.
///
/// Greedy prefix walk: block `i` ends at the first index whose
/// cumulative weight reaches `(i + 1) / parts` of the total, clamped so
/// the remaining blocks can still meet `min_len`.
pub fn weighted_starts(weights: &[f64], parts: usize, min_len: usize) -> Vec<usize> {
    let n = weights.len();
    assert!(parts >= 1, "need at least one block");
    assert!(n >= parts * min_len, "cannot cut {n} items into {parts} blocks of >= {min_len}");
    let w: Vec<f64> = weights.iter().map(|&x| x.max(0.0)).collect();
    let total: f64 = w.iter().sum();
    let mut starts = Vec::with_capacity(parts + 1);
    starts.push(0usize);
    if !(total > 0.0) {
        for idx in 1..parts {
            starts.push(block_range(n, parts, idx).0);
        }
        starts.push(n);
        return starts;
    }
    let mut cum = 0.0;
    let mut at = 0usize;
    for i in 1..parts {
        let target = total * i as f64 / parts as f64;
        let lo = starts[i - 1] + min_len;
        let hi = n - (parts - i) * min_len;
        while at < hi && (at < lo || cum + w[at] <= target) {
            cum += w[at];
            at += 1;
        }
        let cut = at.clamp(lo, hi);
        starts.push(cut);
    }
    starts.push(n);
    starts
}

/// The (θ, φ) process-grid decomposition of one panel.
///
/// Boundaries are stored explicitly so a decomposition may balance
/// *measured cost* instead of node counts (the elastic re-tile path);
/// the uniform constructor reproduces the historical [`block_range`]
/// layout exactly. `tile` and `owner` stay mutually inverse for any
/// boundary set — routing, gathering, and checkpoint restore all lean on
/// that invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomp2D {
    /// Process count along colatitude.
    pub pth: usize,
    /// Process count along longitude.
    pub pph: usize,
    /// Global owned colatitude node count being decomposed.
    pub nth: usize,
    /// Global owned longitude node count.
    pub nph: usize,
    /// θ cut points: `pth + 1` boundaries, first 0, last `nth`.
    th_starts: Vec<usize>,
    /// φ cut points: `pph + 1` boundaries, first 0, last `nph`.
    ph_starts: Vec<usize>,
}

impl Decomp2D {
    /// Decompose `grid`'s horizontal plane over a `pth × pph` process
    /// array with near-equal node counts.
    pub fn new(pth: usize, pph: usize, grid: &PatchGrid) -> Self {
        let (_, nth, nph) = grid.dims();
        assert!(
            nth >= MIN_TILE_WIDTH * pth && nph >= MIN_TILE_WIDTH * pph,
            "tiles would be thinner than 2 nodes"
        );
        let th_starts = (0..pth).map(|i| block_range(nth, pth, i).0).chain([nth]).collect();
        let ph_starts = (0..pph).map(|i| block_range(nph, pph, i).0).chain([nph]).collect();
        Decomp2D { pth, pph, nth, nph, th_starts, ph_starts }
    }

    /// Decompose balancing per-column cost: `th_weights` (len `nth`) and
    /// `ph_weights` (len `nph`) are the marginal costs of each θ row and
    /// φ column; cuts are chosen by [`weighted_starts`].
    pub fn weighted(
        pth: usize,
        pph: usize,
        grid: &PatchGrid,
        th_weights: &[f64],
        ph_weights: &[f64],
    ) -> Self {
        let (_, nth, nph) = grid.dims();
        assert_eq!(th_weights.len(), nth, "θ weight vector length");
        assert_eq!(ph_weights.len(), nph, "φ weight vector length");
        assert!(
            nth >= MIN_TILE_WIDTH * pth && nph >= MIN_TILE_WIDTH * pph,
            "tiles would be thinner than 2 nodes"
        );
        let th_starts = weighted_starts(th_weights, pth, MIN_TILE_WIDTH);
        let ph_starts = weighted_starts(ph_weights, pph, MIN_TILE_WIDTH);
        Decomp2D { pth, pph, nth, nph, th_starts, ph_starts }
    }

    /// Number of tiles (= panel communicator size).
    pub fn tiles(&self) -> usize {
        self.pth * self.pph
    }

    /// The tile of panel-rank `rank` (row-major over `(θ, φ)`, matching
    /// `CartComm`'s coordinate convention).
    pub fn tile(&self, rank: usize) -> Tile {
        assert!(rank < self.tiles());
        let cth = rank / self.pph;
        let cph = rank % self.pph;
        let (j0, nth) = (self.th_starts[cth], self.th_starts[cth + 1] - self.th_starts[cth]);
        let (k0, nph) = (self.ph_starts[cph], self.ph_starts[cph + 1] - self.ph_starts[cph]);
        Tile { rank, cth, cph, j0, nth, k0, nph }
    }

    /// Panel-rank owning global column `(j, k)`.
    pub fn owner(&self, j: usize, k: usize) -> usize {
        assert!(j < self.nth && k < self.nph);
        let cth = self.th_starts[1..].partition_point(|&s| s <= j);
        let cph = self.ph_starts[1..].partition_point(|&s| s <= k);
        cth * self.pph + cph
    }
}

/// One rank's tile: a rectangle of globally-indexed columns, radially
/// whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Panel rank.
    pub rank: usize,
    /// Process-grid coordinate along colatitude.
    pub cth: usize,
    /// Process-grid coordinate along longitude.
    pub cph: usize,
    /// First owned global θ index.
    pub j0: usize,
    /// Owned colatitude node count.
    pub nth: usize,
    /// First owned global φ index.
    pub k0: usize,
    /// Owned longitude node count.
    pub nph: usize,
}

impl Tile {
    /// Local field shape (radial size from `grid`, halos from the spec).
    pub fn shape(&self, grid: &PatchGrid) -> Shape {
        let spec = grid.spec();
        Shape::new(spec.nr, self.nth, self.nph, spec.halo, spec.halo)
    }

    /// Convert a global column index to tile-local signed indices
    /// (`0` = first owned node; negatives = ghosts).
    #[inline]
    pub fn to_local(&self, j: usize, k: usize) -> (isize, isize) {
        (j as isize - self.j0 as isize, k as isize - self.k0 as isize)
    }

    /// Does the *padded* tile (owned + `halo` ghosts) contain global
    /// column `(j, k)`?
    pub fn contains_padded(&self, j: isize, k: isize, halo: usize) -> bool {
        let h = halo as isize;
        j >= self.j0 as isize - h
            && j < (self.j0 + self.nth) as isize + h
            && k >= self.k0 as isize - h
            && k < (self.k0 + self.nph) as isize + h
    }

    /// Does the owned tile contain global column `(j, k)`?
    pub fn contains(&self, j: usize, k: usize) -> bool {
        j >= self.j0 && j < self.j0 + self.nth && k >= self.k0 && k < self.k0 + self.nph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::PatchSpec;

    #[test]
    fn block_ranges_tile_exactly() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (16, 4), (13, 5)] {
            let mut covered = 0;
            for idx in 0..p {
                let (s, l) = block_range(n, p, idx);
                assert_eq!(s, covered, "blocks must be contiguous");
                assert!(l >= n / p && l <= n / p + 1);
                covered += l;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn owner_is_inverse_of_block_range() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (16, 4), (13, 5), (514, 8)] {
            for idx in 0..p {
                let (s, l) = block_range(n, p, idx);
                for g in s..s + l {
                    assert_eq!(owner_of(n, p, g), idx, "n={n} p={p} g={g}");
                }
            }
        }
    }

    fn grid() -> PatchGrid {
        PatchGrid::new(PatchSpec::equal_spacing(8, 17, 0.35, 1.0))
    }

    #[test]
    fn decomp_tiles_cover_panel() {
        let g = grid();
        let d = Decomp2D::new(3, 4, &g);
        assert_eq!(d.tiles(), 12);
        let (_, nth, nph) = g.dims();
        let mut hit = vec![false; nth * nph];
        for r in 0..d.tiles() {
            let t = d.tile(r);
            assert_eq!(t.rank, r);
            for j in t.j0..t.j0 + t.nth {
                for k in t.k0..t.k0 + t.nph {
                    assert!(!hit[j * nph + k], "column ({j},{k}) owned twice");
                    hit[j * nph + k] = true;
                    assert_eq!(d.owner(j, k), r);
                    assert!(t.contains(j, k));
                }
            }
        }
        assert!(hit.iter().all(|&b| b));
    }

    #[test]
    fn tile_local_indexing() {
        let g = grid();
        let d = Decomp2D::new(2, 2, &g);
        let t = d.tile(3); // bottom-right tile
        let (lj, lk) = t.to_local(t.j0, t.k0);
        assert_eq!((lj, lk), (0, 0));
        let (lj, lk) = t.to_local(t.j0 + 2, t.k0 + 5);
        assert_eq!((lj, lk), (2, 5));
    }

    #[test]
    fn contains_padded_extends_by_halo() {
        let g = grid();
        let d = Decomp2D::new(2, 2, &g);
        let t = d.tile(0);
        let edge_j = (t.j0 + t.nth) as isize;
        assert!(!t.contains(edge_j as usize, t.k0));
        assert!(t.contains_padded(edge_j, t.k0 as isize, 1));
        assert!(!t.contains_padded(edge_j + 1, t.k0 as isize, 1));
        assert!(t.contains_padded(t.j0 as isize - 1, t.k0 as isize, 1));
    }

    #[test]
    fn tile_shape_matches_patch_halo() {
        let g = grid();
        let d = Decomp2D::new(2, 3, &g);
        let t = d.tile(4);
        let s = t.shape(&g);
        assert_eq!(s.nr, 8);
        assert_eq!(s.nth, t.nth);
        assert_eq!(s.nph, t.nph);
        assert_eq!(s.gth, 1);
        assert_eq!(s.gph, 1);
    }

    #[test]
    #[should_panic(expected = "thinner")]
    fn overdecomposition_panics() {
        let g = grid();
        Decomp2D::new(11, 1, &g);
    }

    #[test]
    fn uniform_constructor_reproduces_block_range_layout() {
        let g = grid();
        let d = Decomp2D::new(3, 4, &g);
        for r in 0..d.tiles() {
            let t = d.tile(r);
            assert_eq!((t.j0, t.nth), block_range(d.nth, 3, t.cth));
            assert_eq!((t.k0, t.nph), block_range(d.nph, 4, t.cph));
        }
    }

    #[test]
    fn weighted_starts_balance_and_respect_min_width() {
        // Heavily front-loaded weights: the first block must stay narrow.
        let w: Vec<f64> = (0..16).map(|i| if i < 4 { 10.0 } else { 1.0 }).collect();
        let s = weighted_starts(&w, 4, 2);
        assert_eq!(s[0], 0);
        assert_eq!(s[4], 16);
        for pair in s.windows(2) {
            assert!(pair[1] - pair[0] >= 2, "block thinner than min width: {s:?}");
        }
        // The heavy prefix (weight 40 of 52) lands in the first blocks:
        // the first cut must come before the uniform cut at 4.
        assert!(s[1] <= 4, "front-loaded weights must narrow the first block: {s:?}");
        // Degenerate weights fall back to the uniform layout.
        let z = weighted_starts(&vec![0.0; 12], 3, 2);
        assert_eq!(z, vec![0, 4, 8, 12]);
    }

    #[test]
    fn weighted_decomp_keeps_owner_and_tile_inverse() {
        let g = grid();
        let (_, nth, nph) = g.dims();
        let th_w: Vec<f64> = (0..nth).map(|j| 1.0 + (j as f64 - 3.0).abs()).collect();
        let ph_w: Vec<f64> = (0..nph).map(|k| if k % 5 == 0 { 8.0 } else { 1.0 }).collect();
        let d = Decomp2D::weighted(3, 4, &g, &th_w, &ph_w);
        let mut hit = vec![false; nth * nph];
        for r in 0..d.tiles() {
            let t = d.tile(r);
            assert!(t.nth >= MIN_TILE_WIDTH && t.nph >= MIN_TILE_WIDTH);
            for j in t.j0..t.j0 + t.nth {
                for k in t.k0..t.k0 + t.nph {
                    assert!(!hit[j * nph + k], "column ({j},{k}) owned twice");
                    hit[j * nph + k] = true;
                    assert_eq!(d.owner(j, k), r, "owner/tile disagree at ({j},{k})");
                }
            }
        }
        assert!(hit.iter().all(|&b| b), "weighted tiles must cover the panel");
    }

    #[test]
    #[should_panic(expected = "cannot cut")]
    fn weighted_starts_reject_infeasible_min_width() {
        weighted_starts(&[1.0; 5], 3, 2);
    }
}
