//! 2-D block decomposition of a panel over ranks.
//!
//! The paper decomposes each panel over a `Pθ × Pφ` Cartesian process
//! array (`MPI_CART_CREATE`); the radial dimension stays whole on every
//! rank (it is the vectorized dimension). Blocks are contiguous node
//! ranges whose sizes differ by at most one.

use crate::patch::PatchGrid;
use yy_field::Shape;

/// Contiguous block `idx` of `n` items split into `parts` blocks:
/// returns `(start, len)`. Earlier blocks get the extra items.
pub fn block_range(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts >= 1 && idx < parts, "block {idx} of {parts}");
    assert!(n >= parts, "cannot split {n} items into {parts} non-empty blocks");
    let base = n / parts;
    let extra = n % parts;
    if idx < extra {
        ((base + 1) * idx, base + 1)
    } else {
        (extra * (base + 1) + (idx - extra) * base, base)
    }
}

/// Which block owns item `g` under the [`block_range`] layout.
pub fn owner_of(n: usize, parts: usize, g: usize) -> usize {
    assert!(g < n);
    let base = n / parts;
    let extra = n % parts;
    let boundary = extra * (base + 1);
    if g < boundary {
        g / (base + 1)
    } else {
        extra + (g - boundary) / base
    }
}

/// The (θ, φ) process-grid decomposition of one panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomp2D {
    /// Process count along colatitude.
    pub pth: usize,
    /// Process count along longitude.
    pub pph: usize,
    /// Global owned colatitude node count being decomposed.
    pub nth: usize,
    /// Global owned longitude node count.
    pub nph: usize,
}

impl Decomp2D {
    /// Decompose `grid`'s horizontal plane over a `pth × pph` process
    /// array.
    pub fn new(pth: usize, pph: usize, grid: &PatchGrid) -> Self {
        let (_, nth, nph) = grid.dims();
        assert!(nth >= 2 * pth && nph >= 2 * pph, "tiles would be thinner than 2 nodes");
        Decomp2D { pth, pph, nth, nph }
    }

    /// Number of tiles (= panel communicator size).
    pub fn tiles(&self) -> usize {
        self.pth * self.pph
    }

    /// The tile of panel-rank `rank` (row-major over `(θ, φ)`, matching
    /// `CartComm`'s coordinate convention).
    pub fn tile(&self, rank: usize) -> Tile {
        assert!(rank < self.tiles());
        let cth = rank / self.pph;
        let cph = rank % self.pph;
        let (j0, nth) = block_range(self.nth, self.pth, cth);
        let (k0, nph) = block_range(self.nph, self.pph, cph);
        Tile { rank, cth, cph, j0, nth, k0, nph }
    }

    /// Panel-rank owning global column `(j, k)`.
    pub fn owner(&self, j: usize, k: usize) -> usize {
        owner_of(self.nth, self.pth, j) * self.pph + owner_of(self.nph, self.pph, k)
    }
}

/// One rank's tile: a rectangle of globally-indexed columns, radially
/// whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Panel rank.
    pub rank: usize,
    /// Process-grid coordinate along colatitude.
    pub cth: usize,
    /// Process-grid coordinate along longitude.
    pub cph: usize,
    /// First owned global θ index.
    pub j0: usize,
    /// Owned colatitude node count.
    pub nth: usize,
    /// First owned global φ index.
    pub k0: usize,
    /// Owned longitude node count.
    pub nph: usize,
}

impl Tile {
    /// Local field shape (radial size from `grid`, halos from the spec).
    pub fn shape(&self, grid: &PatchGrid) -> Shape {
        let spec = grid.spec();
        Shape::new(spec.nr, self.nth, self.nph, spec.halo, spec.halo)
    }

    /// Convert a global column index to tile-local signed indices
    /// (`0` = first owned node; negatives = ghosts).
    #[inline]
    pub fn to_local(&self, j: usize, k: usize) -> (isize, isize) {
        (j as isize - self.j0 as isize, k as isize - self.k0 as isize)
    }

    /// Does the *padded* tile (owned + `halo` ghosts) contain global
    /// column `(j, k)`?
    pub fn contains_padded(&self, j: isize, k: isize, halo: usize) -> bool {
        let h = halo as isize;
        j >= self.j0 as isize - h
            && j < (self.j0 + self.nth) as isize + h
            && k >= self.k0 as isize - h
            && k < (self.k0 + self.nph) as isize + h
    }

    /// Does the owned tile contain global column `(j, k)`?
    pub fn contains(&self, j: usize, k: usize) -> bool {
        j >= self.j0 && j < self.j0 + self.nth && k >= self.k0 && k < self.k0 + self.nph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::PatchSpec;

    #[test]
    fn block_ranges_tile_exactly() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (16, 4), (13, 5)] {
            let mut covered = 0;
            for idx in 0..p {
                let (s, l) = block_range(n, p, idx);
                assert_eq!(s, covered, "blocks must be contiguous");
                assert!(l >= n / p && l <= n / p + 1);
                covered += l;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn owner_is_inverse_of_block_range() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (16, 4), (13, 5), (514, 8)] {
            for idx in 0..p {
                let (s, l) = block_range(n, p, idx);
                for g in s..s + l {
                    assert_eq!(owner_of(n, p, g), idx, "n={n} p={p} g={g}");
                }
            }
        }
    }

    fn grid() -> PatchGrid {
        PatchGrid::new(PatchSpec::equal_spacing(8, 17, 0.35, 1.0))
    }

    #[test]
    fn decomp_tiles_cover_panel() {
        let g = grid();
        let d = Decomp2D::new(3, 4, &g);
        assert_eq!(d.tiles(), 12);
        let (_, nth, nph) = g.dims();
        let mut hit = vec![false; nth * nph];
        for r in 0..d.tiles() {
            let t = d.tile(r);
            assert_eq!(t.rank, r);
            for j in t.j0..t.j0 + t.nth {
                for k in t.k0..t.k0 + t.nph {
                    assert!(!hit[j * nph + k], "column ({j},{k}) owned twice");
                    hit[j * nph + k] = true;
                    assert_eq!(d.owner(j, k), r);
                    assert!(t.contains(j, k));
                }
            }
        }
        assert!(hit.iter().all(|&b| b));
    }

    #[test]
    fn tile_local_indexing() {
        let g = grid();
        let d = Decomp2D::new(2, 2, &g);
        let t = d.tile(3); // bottom-right tile
        let (lj, lk) = t.to_local(t.j0, t.k0);
        assert_eq!((lj, lk), (0, 0));
        let (lj, lk) = t.to_local(t.j0 + 2, t.k0 + 5);
        assert_eq!((lj, lk), (2, 5));
    }

    #[test]
    fn contains_padded_extends_by_halo() {
        let g = grid();
        let d = Decomp2D::new(2, 2, &g);
        let t = d.tile(0);
        let edge_j = (t.j0 + t.nth) as isize;
        assert!(!t.contains(edge_j as usize, t.k0));
        assert!(t.contains_padded(edge_j, t.k0 as isize, 1));
        assert!(!t.contains_padded(edge_j + 1, t.k0 as isize, 1));
        assert!(t.contains_padded(t.j0 as isize - 1, t.k0 as isize, 1));
    }

    #[test]
    fn tile_shape_matches_patch_halo() {
        let g = grid();
        let d = Decomp2D::new(2, 3, &g);
        let t = d.tile(4);
        let s = t.shape(&g);
        assert_eq!(s.nr, 8);
        assert_eq!(s.nth, t.nth);
        assert_eq!(s.nph, t.nph);
        assert_eq!(s.gth, 1);
        assert_eq!(s.gph, 1);
    }

    #[test]
    #[should_panic(expected = "thinner")]
    fn overdecomposition_panics() {
        let g = grid();
        Decomp2D::new(11, 1, &g);
    }
}
