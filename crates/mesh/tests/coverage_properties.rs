//! Property tests of the coverage scans on the `yy-testkit` harness:
//! Monte-Carlo results must be seed-deterministic, and the two-patch
//! union must cover the sphere at every sampled configuration.

use yy_mesh::coverage::{nominal_overlap_fraction, scan_discrete_coverage, scan_nominal_coverage};
use yy_mesh::{dedup_column_weights, PatchGrid, PatchSpec};
use yy_testkit::{check, check_with, tk_assert, tk_assert_eq, Config};

#[test]
fn coverage_scan_is_seed_deterministic() {
    check(
        "coverage_scan_is_seed_deterministic",
        |g| (g.below(u64::MAX), g.range_usize(1_000, 20_000)),
        |&(seed, n)| {
            let a = scan_nominal_coverage(n, seed);
            let b = scan_nominal_coverage(n, seed);
            tk_assert_eq!(a, b);
            tk_assert_eq!(a.samples, n);
            Ok(())
        },
    );
}

#[test]
fn nominal_pair_covers_for_any_seed() {
    check_with(
        Config::with_cases(16),
        "nominal_pair_covers_for_any_seed",
        |g| g.below(u64::MAX),
        |&seed| {
            let rep = scan_nominal_coverage(50_000, seed);
            tk_assert_eq!(rep.covered, rep.samples);
            // The overlap estimate stays near the analytic 6.066 % no
            // matter which directions the seed draws.
            tk_assert!(
                (rep.overlap_fraction() - nominal_overlap_fraction()).abs() < 8e-3,
                "overlap {}",
                rep.overlap_fraction()
            );
            Ok(())
        },
    );
}

#[test]
fn discrete_pair_covers_across_resolutions_and_seeds() {
    check_with(
        Config::with_cases(12),
        "discrete_pair_covers_across_resolutions_and_seeds",
        |g| (g.range_usize(9, 49) | 1, g.below(u64::MAX)),
        |&(nth, seed)| {
            let grid = PatchGrid::new(PatchSpec::equal_spacing(4, nth, 0.35, 1.0));
            let rep = scan_discrete_coverage(&grid, 30_000, seed);
            tk_assert_eq!(rep.covered, rep.samples);
            tk_assert!(rep.overlap_fraction() > nominal_overlap_fraction());
            Ok(())
        },
    );
}

#[test]
fn dedup_weights_are_a_partition_of_unity_in_range() {
    check_with(
        Config::with_cases(12),
        "dedup_weights_are_a_partition_of_unity_in_range",
        |g| g.range_usize(9, 41) | 1,
        |&nth| {
            let grid = PatchGrid::new(PatchSpec::equal_spacing(4, nth, 0.35, 1.0));
            let w = dedup_column_weights(&grid);
            let (_, gnth, gnph) = grid.dims();
            tk_assert_eq!(w.len(), gnth * gnph);
            tk_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
            Ok(())
        },
    );
}
